type solution = { values : bool array; objective : float }

type outcome =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Unknown

type config = {
  time_limit : float;
  node_limit : int;
  lp_root : bool;
  lp_depth : int;
  lp_size_limit : int;
  lp_engine : Simplex.engine;
  presolve : bool;
  cuts : bool;
  cut_rounds : int;
  fpump : bool;
}

let default_config =
  {
    time_limit = 60.0;
    node_limit = 2_000_000;
    lp_root = true;
    lp_depth = 2;
    lp_size_limit = 12_000_000;
    lp_engine = Simplex.Sparse;
    presolve = true;
    cuts = true;
    cut_rounds = 4;
    fpump = true;
  }

type stats = { nodes : int; lp_calls : int; elapsed : float; root_bound : float }

let eps = 1e-6

(* Telemetry.  Node/LP tallies accumulate in the per-domain [state] and
   are flushed to the registry once per solve; only the incumbent
   counter is bumped inline (incumbents are rare by construction). *)
let m_solves =
  Telemetry.Metrics.counter ~help:"branch-and-bound solves"
    "sdnplace_ilp_solves_total"

let m_nodes =
  Telemetry.Metrics.counter ~help:"branch-and-bound nodes expanded"
    "sdnplace_ilp_nodes_total"

let m_lp_calls =
  Telemetry.Metrics.counter ~help:"LP relaxations attempted"
    "sdnplace_ilp_lp_calls_total"

let m_incumbents =
  Telemetry.Metrics.counter ~help:"incumbent (improving) solutions found"
    "sdnplace_ilp_incumbents_total"

let m_solve_s =
  Telemetry.Metrics.histogram ~help:"ILP solve duration"
    "sdnplace_ilp_solve_seconds"

let m_lp_s =
  Telemetry.Metrics.histogram ~help:"LP relaxation duration"
    "sdnplace_ilp_lp_seconds"

let m_root_bound =
  Telemetry.Metrics.gauge ~help:"root LP lower bound of the last solve"
    "sdnplace_ilp_root_bound"

let m_warm_hits =
  Telemetry.Metrics.counter
    ~help:"LP re-solves warm-started from an existing basis"
    "sdnplace_ilp_warm_start_hits_total"

let m_warm_misses =
  Telemetry.Metrics.counter
    ~help:"LP solves that had no basis to warm-start from"
    "sdnplace_ilp_warm_start_misses_total"

let m_cuts =
  Telemetry.Metrics.counter
    ~help:"cutting planes appended to the root LP"
    "sdnplace_ilp_cuts_total"

let m_cut_rounds =
  Telemetry.Metrics.counter
    ~help:"separation rounds that produced at least one cut"
    "sdnplace_ilp_cut_rounds_total"

let m_pump_rounds =
  Telemetry.Metrics.counter
    ~help:"feasibility-pump LP-round-project iterations"
    "sdnplace_ilp_fpump_rounds_total"

let m_presolve_vars =
  Telemetry.Metrics.gauge
    ~help:"variables eliminated by presolve in the last solve"
    "sdnplace_ilp_presolve_vars_fixed"

let m_presolve_rows =
  Telemetry.Metrics.gauge
    ~help:"rows dropped by presolve in the last solve"
    "sdnplace_ilp_presolve_rows_dropped"

let pp_outcome fmt = function
  | Optimal s -> Format.fprintf fmt "optimal (%g)" s.objective
  | Feasible s -> Format.fprintf fmt "feasible (%g, not proven optimal)" s.objective
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Unknown -> Format.pp_print_string fmt "unknown (limit hit)"

let objective_value model values =
  List.fold_left
    (fun acc (c, v) -> if values.((v : Model.var :> int)) then acc +. c else acc)
    0.0 (Model.objective model)

let check_feasible model values =
  Array.length values = Model.num_vars model
  && List.for_all
       (fun (r : Model.row) ->
         let lhs =
           List.fold_left
             (fun acc (c, v) ->
               if values.((v : Model.var :> int)) then acc +. c else acc)
             0.0 r.terms
         in
         match r.sense with
         | Model.Le -> lhs <= r.rhs +. eps
         | Model.Ge -> lhs >= r.rhs -. eps
         | Model.Eq -> Float.abs (lhs -. r.rhs) <= eps)
       (Model.rows model)

(* ------------------------------------------------------------------ *)
(* Internal search state                                              *)
(* ------------------------------------------------------------------ *)

(* All constraints are normalized to <= rows.  [minact] is the smallest
   achievable activity given current fixings (free variables contribute
   min(coef, 0)); a row is unsatisfiable iff minact > rhs. *)
type lrow = {
  vidx : int array;
  vcoef : float array;
  rhs : float;
  mutable minact : float;
}

(* Covering rows (sum of distinct variables >= need) get dedicated
   bookkeeping for branching and lower bounds. *)
type cover = { cvars : int array; need : int; mutable ones : int; mutable free : int }

type state = {
  n : int;
  c : float array;
  all_int : bool;
  lrows : lrow array;
  covers : cover array;
  occ_row : int array array;  (* var -> lrow indices *)
  occ_coef : float array array;
  cocc : int array array;  (* var -> cover indices *)
  value : int array;  (* -1 free, 0, 1 *)
  trail : int array;
  mutable trail_len : int;
  mutable obj_fixed : float;  (* sum of c over vars fixed to 1 *)
  mutable neg_free : float;  (* sum of negative c over free vars *)
  used_stamp : int array;  (* scratch for the cover bound *)
  mutable stamp : int;
  mutable best : solution option;
  (* Best objective known globally.  In a sequential solve this mirrors
     [best]; in a parallel solve every worker shares one atomic so
     pruning stays globally effective.  The cutoff is strict, so sharing
     never prunes a strictly better solution — the parallel optimum is
     the sequential optimum. *)
  mutable shared_obj : float Atomic.t;
  mutable cancel : unit -> bool;  (* cooperative cancellation, polled in [dfs] *)
  mutable nodes : int;
  mutable lp_calls : int;
  mutable stopped : bool;
  mutable root_bound : float;
  (* Sparse LP engine: one persistent revised-simplex instance per search
     state.  Each node narrows variable bounds in place and re-solves
     with the dual simplex from the parent's optimal basis instead of
     rebuilding a reduced LP from scratch.  [splx_seed] optionally ships
     a basis snapshot into a freshly built state (parallel workers warm
     their first LP from the root basis). *)
  mutable splx : Simplex.Revised.t option;
  mutable splx_seed : Simplex.Revised.snapshot option;
  (* Cut rows separated at the root.  They are part of the LP for the
     whole tree (cuts are derived from model rows only, so they are
     globally valid); parallel workers receive them before building
     their own LP so the root basis snapshot's fingerprint matches. *)
  mutable extra_rows : ((int * float) list * Simplex.Revised.sense * float) array;
  (* Wall-clock instant after which LP pivot loops give up; keeps a
     single long relaxation from blowing through [time_limit]. *)
  mutable lp_deadline : float;
}

let build_state model =
  let n = Model.num_vars model in
  let c = Array.make n 0.0 in
  List.iter
    (fun (coef, v) -> c.((v : Model.var :> int)) <- c.((v : Model.var :> int)) +. coef)
    (Model.objective model);
  let all_int = Array.for_all (fun x -> Float.is_integer x) c in
  let lrows = ref [] and covers = ref [] in
  let add_lrow terms rhs =
    let terms = List.filter (fun (coef, _) -> coef <> 0.0) terms in
    let vidx = Array.of_list (List.map (fun (_, v) -> (v : Model.var :> int)) terms) in
    let vcoef = Array.of_list (List.map fst terms) in
    let minact =
      Array.fold_left (fun acc a -> acc +. Float.min a 0.0) 0.0 vcoef
    in
    lrows := { vidx; vcoef; rhs; minact } :: !lrows
  in
  let is_unit_cover (r : Model.row) =
    r.rhs >= 1.0 -. eps
    && List.for_all (fun (coef, _) -> Float.abs (coef -. 1.0) < eps) r.terms
    &&
    let vars = List.map (fun (_, v) -> (v : Model.var :> int)) r.terms in
    List.length (List.sort_uniq Stdlib.compare vars) = List.length vars
  in
  List.iter
    (fun (r : Model.row) ->
      let neg = List.map (fun (coef, v) -> (-.coef, v)) r.terms in
      (match r.sense with
      | Model.Le -> add_lrow r.terms r.rhs
      | Model.Ge -> add_lrow neg (-.r.rhs)
      | Model.Eq ->
        add_lrow r.terms r.rhs;
        add_lrow neg (-.r.rhs));
      if r.sense = Model.Ge && is_unit_cover r then
        let cvars =
          Array.of_list (List.map (fun (_, v) -> (v : Model.var :> int)) r.terms)
        in
        covers :=
          {
            cvars;
            need = int_of_float (Float.round r.rhs);
            ones = 0;
            free = Array.length cvars;
          }
          :: !covers)
    (Model.rows model);
  let lrows = Array.of_list (List.rev !lrows) in
  let covers = Array.of_list (List.rev !covers) in
  let occ_count = Array.make n 0 and cocc_count = Array.make n 0 in
  Array.iter (fun r -> Array.iter (fun v -> occ_count.(v) <- occ_count.(v) + 1) r.vidx) lrows;
  Array.iter (fun cv -> Array.iter (fun v -> cocc_count.(v) <- cocc_count.(v) + 1) cv.cvars) covers;
  let occ_row = Array.init n (fun v -> Array.make occ_count.(v) 0) in
  let occ_coef = Array.init n (fun v -> Array.make occ_count.(v) 0.0) in
  let cocc = Array.init n (fun v -> Array.make cocc_count.(v) 0) in
  Array.fill occ_count 0 n 0;
  Array.fill cocc_count 0 n 0;
  Array.iteri
    (fun ri r ->
      Array.iteri
        (fun k v ->
          occ_row.(v).(occ_count.(v)) <- ri;
          occ_coef.(v).(occ_count.(v)) <- r.vcoef.(k);
          occ_count.(v) <- occ_count.(v) + 1)
        r.vidx)
    lrows;
  Array.iteri
    (fun ci cv ->
      Array.iter
        (fun v ->
          cocc.(v).(cocc_count.(v)) <- ci;
          cocc_count.(v) <- cocc_count.(v) + 1)
        cv.cvars)
    covers;
  let neg_free = Array.fold_left (fun acc x -> acc +. Float.min x 0.0) 0.0 c in
  {
    n;
    c;
    all_int;
    lrows;
    covers;
    occ_row;
    occ_coef;
    cocc;
    value = Array.make n (-1);
    trail = Array.make (max n 1) 0;
    trail_len = 0;
    obj_fixed = 0.0;
    neg_free;
    used_stamp = Array.make n 0;
    stamp = 0;
    best = None;
    shared_obj = Atomic.make infinity;
    cancel = (fun () -> false);
    nodes = 0;
    lp_calls = 0;
    stopped = false;
    root_bound = neg_infinity;
    splx = None;
    splx_seed = None;
    extra_rows = [||];
    lp_deadline = infinity;
  }

let assign st v b =
  st.value.(v) <- b;
  st.trail.(st.trail_len) <- v;
  st.trail_len <- st.trail_len + 1;
  let bf = if b = 1 then 1.0 else 0.0 in
  let rows = st.occ_row.(v) and coefs = st.occ_coef.(v) in
  for k = 0 to Array.length rows - 1 do
    let a = coefs.(k) in
    st.lrows.(rows.(k)).minact <-
      st.lrows.(rows.(k)).minact +. ((a *. bf) -. Float.min a 0.0)
  done;
  Array.iter
    (fun ci ->
      let cv = st.covers.(ci) in
      cv.free <- cv.free - 1;
      if b = 1 then cv.ones <- cv.ones + 1)
    st.cocc.(v);
  if st.c.(v) < 0.0 then st.neg_free <- st.neg_free -. st.c.(v);
  if b = 1 then st.obj_fixed <- st.obj_fixed +. st.c.(v)

let undo_to st mark =
  while st.trail_len > mark do
    st.trail_len <- st.trail_len - 1;
    let v = st.trail.(st.trail_len) in
    let b = st.value.(v) in
    st.value.(v) <- -1;
    let bf = if b = 1 then 1.0 else 0.0 in
    let rows = st.occ_row.(v) and coefs = st.occ_coef.(v) in
    for k = 0 to Array.length rows - 1 do
      let a = coefs.(k) in
      st.lrows.(rows.(k)).minact <-
        st.lrows.(rows.(k)).minact -. ((a *. bf) -. Float.min a 0.0)
    done;
    Array.iter
      (fun ci ->
        let cv = st.covers.(ci) in
        cv.free <- cv.free + 1;
        if b = 1 then cv.ones <- cv.ones - 1)
      st.cocc.(v);
    if st.c.(v) < 0.0 then st.neg_free <- st.neg_free +. st.c.(v);
    if b = 1 then st.obj_fixed <- st.obj_fixed -. st.c.(v)
  done

exception Conflict

(* Enforce bound-consistency on one row; may assign further variables
   (which lengthens the trail and will be processed by the caller). *)
let force_row st ri =
  let r = st.lrows.(ri) in
  if r.minact > r.rhs +. eps then raise Conflict;
  let slack = r.rhs -. r.minact in
  for k = 0 to Array.length r.vidx - 1 do
    let v = r.vidx.(k) in
    if st.value.(v) = -1 then begin
      let a = r.vcoef.(k) in
      if a > slack +. eps then assign st v 0
      else if -.a > slack +. eps then assign st v 1
    end
  done

(* Process trail entries from [mark] to fixpoint. *)
let propagate st mark =
  let q = ref mark in
  try
    while !q < st.trail_len do
      let v = st.trail.(!q) in
      incr q;
      let rows = st.occ_row.(v) in
      for k = 0 to Array.length rows - 1 do
        force_row st rows.(k)
      done
    done;
    true
  with Conflict -> false

let propagate_root st =
  try
    for ri = 0 to Array.length st.lrows - 1 do
      force_row st ri
    done;
    propagate st 0
  with Conflict -> false

(* Lower bound = cost already committed
                + negative costs still collectable
                + cheapest completions of disjoint unsatisfied covers. *)
let bound st =
  let base = st.obj_fixed +. st.neg_free in
  st.stamp <- st.stamp + 1;
  let extra = ref 0.0 in
  Array.iter
    (fun cv ->
      if cv.ones < cv.need then begin
        let free_costs = ref [] in
        let clean = ref true in
        Array.iter
          (fun v ->
            if st.value.(v) = -1 then
              if st.used_stamp.(v) = st.stamp then clean := false
              else free_costs := Float.max st.c.(v) 0.0 :: !free_costs)
          cv.cvars;
        if !clean then begin
          let costs = List.sort Stdlib.compare !free_costs in
          let needed = cv.need - cv.ones in
          let rec take k = function
            | cost :: rest when k > 0 -> cost +. take (k - 1) rest
            | _ -> 0.0
          in
          extra := !extra +. take needed costs;
          Array.iter
            (fun v -> if st.value.(v) = -1 then st.used_stamp.(v) <- st.stamp)
            cv.cvars
        end
      end)
    st.covers;
  base +. !extra

(* Sparse persistent LP: built once over the full model (every variable,
   every normalized <= row), then re-solved per node after narrowing the
   fixed variables' bounds to a point.  A bound change keeps the old
   basis dual-feasible, so each re-solve is a dual-simplex warm start. *)
let build_splx st =
  let rows =
    Array.append
      (Array.map
         (fun (r : lrow) ->
           let terms = ref [] in
           for k = Array.length r.vidx - 1 downto 0 do
             terms := (r.vidx.(k), r.vcoef.(k)) :: !terms
           done;
           (!terms, Simplex.Revised.Le, r.rhs))
         st.lrows)
      st.extra_rows
  in
  let obj = ref [] in
  for v = st.n - 1 downto 0 do
    if st.c.(v) <> 0.0 then obj := (v, st.c.(v)) :: !obj
  done;
  Simplex.Revised.create ~nvars:st.n ~obj:!obj
    ~lower:(Array.make st.n 0.0)
    ~upper:(Array.make st.n 1.0)
    ~rows

let lp_bound_sparse ?(max_iters = 20_000) ?point st =
  let lp =
    match st.splx with
    | Some lp -> lp
    | None ->
      let lp = build_splx st in
      (match st.splx_seed with
      | Some snap -> ignore (Simplex.Revised.restore lp snap)
      | None -> ());
      st.splx <- Some lp;
      lp
  in
  for v = 0 to st.n - 1 do
    match st.value.(v) with
    | -1 -> Simplex.Revised.set_bounds lp v 0.0 1.0
    | 0 -> Simplex.Revised.set_bounds lp v 0.0 0.0
    | _ -> Simplex.Revised.set_bounds lp v 1.0 1.0
  done;
  st.lp_calls <- st.lp_calls + 1;
  if Simplex.Revised.has_basis lp then Telemetry.Metrics.incr m_warm_hits
  else Telemetry.Metrics.incr m_warm_misses;
  match
    Telemetry.Metrics.time m_lp_s (fun () ->
        Simplex.Revised.reoptimize ~max_iters ~deadline:st.lp_deadline ?point lp)
  with
  | Simplex.Revised.Optimal { objective; solution } ->
    (* The bounds pin fixed variables, so [objective] already includes
       their contribution — no [obj_fixed] correction. *)
    Some (objective, Some (None, solution))
  | Simplex.Revised.Infeasible -> raise Conflict
  | Simplex.Revised.Unbounded | Simplex.Revised.Iteration_limit -> None

(* LP relaxation over the free variables.  Returns [None] when skipped,
   [Some (bound, hint)] where the hint pairs an optional free-variable
   index map (dense engine) with the LP solution; raises [Conflict] when
   LP-infeasible. *)
let lp_bound_dense st cfg =
  let free = ref 0 in
  let map = Array.make st.n (-1) in
  for v = 0 to st.n - 1 do
    if st.value.(v) = -1 then begin
      map.(v) <- !free;
      incr free
    end
  done;
  let nfree = !free in
  if nfree = 0 then None
  else begin
    let rows = ref [] and nrows = ref 0 in
    Array.iter
      (fun (r : lrow) ->
        let coeffs = ref [] and fixed = ref 0.0 and has_free = ref false in
        Array.iteri
          (fun k v ->
            match st.value.(v) with
            | -1 ->
              has_free := true;
              coeffs := (map.(v), r.vcoef.(k)) :: !coeffs
            | 1 -> fixed := !fixed +. r.vcoef.(k)
            | _ -> ())
          r.vidx;
        if !has_free then begin
          incr nrows;
          rows :=
            { Simplex.coeffs = !coeffs; sense = Simplex.Le; rhs = r.rhs -. !fixed }
            :: !rows
        end)
      st.lrows;
    if !nrows * nfree > cfg.lp_size_limit then None
    else begin
      let minimize = ref [] in
      for v = 0 to st.n - 1 do
        if st.value.(v) = -1 && st.c.(v) <> 0.0 then
          minimize := (map.(v), st.c.(v)) :: !minimize
      done;
      let problem =
        {
          Simplex.num_vars = nfree;
          minimize = !minimize;
          rows = !rows;
          upper = Array.make nfree 1.0;
        }
      in
      st.lp_calls <- st.lp_calls + 1;
      Telemetry.Metrics.incr m_warm_misses;
      match
        Telemetry.Metrics.time m_lp_s (fun () ->
            Simplex.solve ~engine:Simplex.Dense ~max_iters:20_000 problem)
      with
      | Simplex.Optimal { objective; solution } ->
        Some (st.obj_fixed +. objective, Some (Some map, solution))
      | Simplex.Infeasible -> raise Conflict
      | Simplex.Unbounded | Simplex.Iteration_limit -> None
    end
  end

let lp_bound st cfg =
  match cfg.lp_engine with
  | Simplex.Sparse -> lp_bound_sparse st
  | Simplex.Dense -> lp_bound_dense st cfg

(* Branch on the tightest unsatisfied cover (fewest spare variables),
   inside it on the variable covering the most unsatisfied covers.  With
   every cover satisfied, finish cheapest-first: negative-cost variables
   at 1, others at 0. *)
let pick_branch st =
  let best_cover = ref (-1) and best_slack = ref max_int in
  Array.iteri
    (fun ci cv ->
      if cv.ones < cv.need then begin
        let slack = cv.free - (cv.need - cv.ones) in
        if slack < !best_slack then begin
          best_slack := slack;
          best_cover := ci
        end
      end)
    st.covers;
  if !best_cover >= 0 then begin
    let cv = st.covers.(!best_cover) in
    let best_v = ref (-1) and best_score = ref neg_infinity in
    Array.iter
      (fun v ->
        if st.value.(v) = -1 then begin
          let unsat = ref 0 in
          Array.iter
            (fun ci ->
              let c2 = st.covers.(ci) in
              if c2.ones < c2.need then incr unsat)
            st.cocc.(v);
          let score = float_of_int !unsat -. (0.01 *. st.c.(v)) in
          if score > !best_score then begin
            best_score := score;
            best_v := v
          end
        end)
      cv.cvars;
    Some (!best_v, 1)
  end
  else begin
    (* No unsatisfied covers: fix remaining frees toward their cheap value. *)
    let neg = ref (-1) and any = ref (-1) in
    (try
       for v = 0 to st.n - 1 do
         if st.value.(v) = -1 then begin
           if st.c.(v) < 0.0 then begin
             neg := v;
             raise Exit
           end;
           if !any < 0 then any := v
         end
       done
     with Exit -> ());
    if !neg >= 0 then Some (!neg, 1)
    else if !any >= 0 then Some (!any, 0)
    else None
  end

exception Stop

let cutoff st =
  let b = Atomic.get st.shared_obj in
  if b = infinity then infinity
  else if st.all_int then b -. 0.5
  else b -. 1e-9

(* Publish an objective into the shared bound (monotone min via CAS). *)
let rec publish shared objective =
  let cur = Atomic.get shared in
  if objective < cur -. 1e-9 then
    if not (Atomic.compare_and_set shared cur objective) then
      publish shared objective

let set_best st values objective =
  Telemetry.Metrics.incr m_incumbents;
  st.best <- Some { values; objective };
  publish st.shared_obj objective

(* Root dual bound usable for optimality tests: with an all-integer
   objective the LP bound rounds up to the next integer. *)
let settle_bound st =
  if st.all_int && st.root_bound > neg_infinity then
    Float.round (Float.ceil (st.root_bound -. eps))
  else st.root_bound

let settled st =
  match st.best with
  | Some b -> b.objective <= settle_bound st +. eps
  | None -> false

let record_incumbent st =
  let objective = st.obj_fixed in
  let improved =
    match st.best with None -> true | Some b -> objective < b.objective -. 1e-9
  in
  if improved then begin
    set_best st (Array.map (fun v -> v = 1) st.value) objective;
    (* The search proved a matching lower bound at the root: stop early. *)
    if objective <= settle_bound st +. eps then raise Stop
  end

let rec dfs st cfg ~start ~depth =
  st.nodes <- st.nodes + 1;
  if
    st.nodes land 255 = 0
    && (Sys.time () -. start > cfg.time_limit || st.cancel ())
  then begin
    st.stopped <- true;
    raise Stop
  end;
  if st.nodes > cfg.node_limit then begin
    st.stopped <- true;
    raise Stop
  end;
  let lb = bound st in
  if lb >= cutoff st then ()
  else begin
    let lb_and_hint =
      if depth <= cfg.lp_depth && depth > 0 then
        try lp_bound st cfg with Conflict -> Some (infinity, None)
      else None
    in
    let lb =
      match lb_and_hint with Some (b, _) -> Float.max lb b | None -> lb
    in
    let lb = if st.all_int then Float.round (Float.ceil (lb -. eps)) else lb in
    if lb >= cutoff st then ()
    else
      match pick_branch st with
      | None -> record_incumbent st
      | Some (v, first) ->
        let try_value b =
          let mark = st.trail_len in
          assign st v b;
          if propagate st mark then dfs st cfg ~start ~depth:(depth + 1);
          undo_to st mark
        in
        try_value first;
        try_value (1 - first)
  end

(* If the LP point is integral, promote it to an incumbent. *)
let try_integral_incumbent st model map lp_sol =
  let integral =
    Array.for_all (fun x -> Float.abs (x -. Float.round x) < 1e-7) lp_sol
  in
  if integral then begin
    let values = Array.map (fun v -> v = 1) st.value in
    (match map with
    | Some map ->
      Array.iteri
        (fun v f -> if f >= 0 then values.(v) <- lp_sol.(f) > 0.5)
        map
    | None ->
      (* Sparse engine: the LP solution spans every variable. *)
      Array.iteri
        (fun v x -> if st.value.(v) = -1 then values.(v) <- x > 0.5)
        lp_sol);
    if check_feasible model values then
      let objective = objective_value model values in
      let better =
        match st.best with
        | None -> true
        | Some b -> objective < b.objective -. 1e-9
      in
      if better then set_best st values objective
  end

(* Root cutting-plane loop on the persistent sparse LP.  Cuts are
   separated from model structure only (never node fixings), so they are
   valid for the whole 0-1 feasible set: they stay in the LP across the
   entire tree and are shipped to parallel workers via [st.extra_rows].
   Each accepted round appends rows to the factorized instance
   ([Revised.add_rows] carries the basis, leaving it dual-feasible) and
   re-solves with the dual simplex.  A cut-LP infeasibility proves the
   model infeasible. *)
let cut_loop st config model last_sol root_ok =
  let ctx = Cuts.prepare model in
  let pool = Hashtbl.create 64 in
  let round = ref 0 and go = ref true in
  while !go && !round < config.cut_rounds do
    incr round;
    match (st.splx, !last_sol) with
    | Some lp, Some x ->
      let fresh =
        Cuts.separate ctx x
        |> List.filter (fun c ->
               let k = Cuts.key c in
               if Hashtbl.mem pool k then false
               else begin
                 Hashtbl.add pool k ();
                 true
               end)
      in
      if fresh = [] then go := false
      else begin
        let rows =
          Array.of_list
            (List.map
               (fun (c : Cuts.cut) ->
                 let sense =
                   match c.Cuts.sense with
                   | Model.Le -> Simplex.Revised.Le
                   | Model.Ge -> Simplex.Revised.Ge
                   | Model.Eq -> Simplex.Revised.Eq
                 in
                 ( List.map (fun (coef, v) -> (v, coef)) c.Cuts.terms,
                   sense,
                   c.Cuts.rhs ))
               fresh)
        in
        let lp = Simplex.Revised.add_rows lp rows in
        st.splx <- Some lp;
        st.extra_rows <- Array.append st.extra_rows rows;
        Telemetry.Metrics.add m_cuts (Array.length rows);
        Telemetry.Metrics.incr m_cut_rounds;
        st.lp_calls <- st.lp_calls + 1;
        match
          Telemetry.Metrics.time m_lp_s (fun () ->
              Simplex.Revised.reoptimize ~max_iters:100_000
                ~deadline:st.lp_deadline lp)
        with
        | Simplex.Revised.Optimal { objective; solution } ->
          if objective > st.root_bound then st.root_bound <- objective;
          last_sol := Some solution;
          try_integral_incumbent st model None solution
        | Simplex.Revised.Infeasible ->
          root_ok := false;
          go := false
        | Simplex.Revised.Unbounded | Simplex.Revised.Iteration_limit ->
          go := false
      end
    | _ -> go := false
  done

(* Primal heuristics at the root: feasibility pump for a first (or
   better) incumbent, then an objective dive when the pump's point does
   not already match the bound.  Both borrow the persistent LP. *)
let pump_and_dive st model =
  match st.splx with
  | None -> ()
  | Some lp ->
    let deadline = st.lp_deadline in
    let better obj =
      match st.best with None -> true | Some b -> obj < b.objective -. 1e-9
    in
    let sol, rounds = Fpump.pump ~deadline ~lp model in
    Telemetry.Metrics.add m_pump_rounds rounds;
    (match sol with
    | Some (xt, obj) when better obj && check_feasible model xt ->
      set_best st xt obj
    | _ -> ());
    if not (settled st) then begin
      let base_bounds =
        Array.init st.n (fun v ->
            match st.value.(v) with
            | -1 -> (0.0, 1.0)
            | 0 -> (0.0, 0.0)
            | _ -> (1.0, 1.0))
      in
      match Fpump.dive ~deadline ~lp ~base_bounds model with
      | Some (xt, obj) when better obj && check_feasible model xt ->
        set_best st xt obj
      | _ -> ()
    end

(* Root work shared by the sequential and parallel drivers: warm start,
   root propagation, root LP (crash-started from the incumbent, with the
   integral-hint incumbent), cutting planes, primal heuristics.
   Returns the prepared state plus [`Settled outcome] when the root
   already decides the instance, [`Open] otherwise. *)
let prepare ~config ~cancel ?wall_deadline ?warm_start ?basis model =
  let st = build_state model in
  st.cancel <- cancel;
  (match wall_deadline with
  | Some d -> st.lp_deadline <- d
  | None -> ());
  (* An externally supplied basis cell (see [solve]) seeds the first
     sparse LP — the root re-solve warm-starts from the previous solve's
     optimal basis when the model shape matches (fingerprint-guarded
     inside [Revised.restore], so a stale snapshot just cold-starts). *)
  (match basis with Some cell -> st.splx_seed <- !cell | None -> ());
  (match warm_start with
  | Some values
    when Array.length values = st.n && check_feasible model values ->
    set_best st (Array.copy values) (objective_value model values)
  | _ -> ());
  if not (propagate_root st) then (st, `Settled Infeasible)
  else begin
    let root_ok = ref true in
    let last_sol = ref None in
    (if config.lp_root then begin
       (* A known incumbent crashes the first basis: nonbasic statuses
          at the bound nearest the integer point give a primal-feasible
          start, skipping phase 1 entirely on paper-scale instances. *)
       let point =
         match (st.best, config.lp_engine) with
         | Some b, Simplex.Sparse when st.splx_seed = None ->
           Some (Array.map (fun v -> if v then 1.0 else 0.0) b.values)
         | _ -> None
       in
       let res =
         try
           match config.lp_engine with
           | Simplex.Sparse -> lp_bound_sparse ~max_iters:200_000 ?point st
           | Simplex.Dense -> lp_bound_dense st config
         with Conflict ->
           root_ok := false;
           None
       in
       match res with
       | Some (b, hint) ->
         st.root_bound <- b;
         (* An integral LP optimum is already the answer. *)
         (match hint with
         | Some (map, lp_sol) ->
           if map = None then last_sol := Some lp_sol;
           try_integral_incumbent st model map lp_sol
         | None -> ())
       | None -> ()
     end);
    if
      !root_ok && config.cuts
      && config.lp_engine = Simplex.Sparse
      && not (settled st)
    then cut_loop st config model last_sol root_ok;
    if
      !root_ok && config.fpump
      && config.lp_engine = Simplex.Sparse
      && !last_sol <> None
      && not (settled st)
    then pump_and_dive st model;
    if not !root_ok then (st, `Settled Infeasible)
    else
      match st.best with
      | Some b when b.objective <= settle_bound st +. eps ->
        (st, `Settled (Optimal b))
      | _ -> (st, `Open)
  end

(* Export the search state's final basis into the caller's cell so the
   next solve over a same-shaped model (an incremental event re-solve)
   starts from it. *)
let export_basis st basis =
  match basis with
  | Some cell -> (
    match st.splx with
    | Some lp when Simplex.Revised.has_basis lp ->
      cell := Some (Simplex.Revised.snapshot lp)
    | _ -> ())
  | None -> ()

let solve_inner ~config ~cancel ?warm_start ?basis model =
  let start = Sys.time () in
  let wall_deadline = Unix.gettimeofday () +. config.time_limit in
  Telemetry.Metrics.incr m_solves;
  let st, root =
    prepare ~config ~cancel ~wall_deadline ?warm_start ?basis model
  in
  let finish outcome =
    let s =
      {
        nodes = st.nodes;
        lp_calls = st.lp_calls;
        elapsed = Sys.time () -. start;
        root_bound = st.root_bound;
      }
    in
    Telemetry.Metrics.add m_nodes s.nodes;
    Telemetry.Metrics.add m_lp_calls s.lp_calls;
    Telemetry.Metrics.observe m_solve_s s.elapsed;
    Telemetry.Metrics.set m_root_bound s.root_bound;
    export_basis st basis;
    (outcome, s)
  in
  match root with
  | `Settled outcome -> finish outcome
  | `Open ->
    (try dfs st config ~start ~depth:0 with Stop -> ());
    (match (st.stopped, st.best) with
    | false, Some b -> finish (Optimal b)
    | false, None -> finish Infeasible
    | true, Some b -> finish (Feasible b)
    | true, None -> finish Unknown)

(* ------------------------------------------------------------------ *)
(* Parallel branch and bound over OCaml domains                       *)
(* ------------------------------------------------------------------ *)

(* Replay a decision prefix (assign + propagate after each decision,
   mirroring [try_value]).  Returns false when the prefix conflicts. *)
let replay st prefix =
  Array.for_all
    (fun (v, b) ->
      if st.value.(v) >= 0 then st.value.(v) = b
      else begin
        let mark = st.trail_len in
        assign st v b;
        propagate st mark
      end)
    prefix

(* Deterministic work splitting: breadth-first expansion of the top of
   the search tree (same propagation, bounding and branching rules as
   [dfs], so the frontier depends only on the instance — never on
   timing).  Leaves met while splitting are recorded as incumbents,
   which may raise [Stop] when one matches the root bound. *)
let split_frontier st ~target =
  let q = Queue.create () in
  Queue.add [] q;
  let expansions = ref 0 in
  let budget = 64 * target in
  while
    (not (Queue.is_empty q))
    && Queue.length q < target
    && !expansions < budget
  do
    let prefix = Queue.pop q in
    incr expansions;
    st.nodes <- st.nodes + 1;
    let mark = st.trail_len in
    (if replay st (Array.of_list prefix) then begin
       let lb = bound st in
       let lb = if st.all_int then Float.round (Float.ceil (lb -. eps)) else lb in
       if lb < cutoff st then
         match pick_branch st with
         | None -> record_incumbent st
         | Some (v, first) ->
           Queue.add (prefix @ [ (v, first) ]) q;
           Queue.add (prefix @ [ (v, 1 - first) ]) q
     end);
    undo_to st mark
  done;
  q |> Queue.to_seq |> Seq.map Array.of_list |> Array.of_seq

let solve_parallel_inner ~config ~jobs ~cancel ?warm_start ?basis model =
  if jobs <= 1 then solve_inner ~config ~cancel ?warm_start ?basis model
  else begin
    let wall0 = Unix.gettimeofday () in
    Telemetry.Metrics.incr m_solves;
    let st, root =
      prepare ~config ~cancel
        ~wall_deadline:(wall0 +. config.time_limit)
        ?warm_start ?basis model
    in
    let finish ?(extra_nodes = 0) ?(extra_lp = 0) outcome =
      let s =
        {
          nodes = st.nodes + extra_nodes;
          lp_calls = st.lp_calls + extra_lp;
          elapsed = Unix.gettimeofday () -. wall0;
          root_bound = st.root_bound;
        }
      in
      Telemetry.Metrics.add m_nodes s.nodes;
      Telemetry.Metrics.add m_lp_calls s.lp_calls;
      Telemetry.Metrics.observe m_solve_s s.elapsed;
      Telemetry.Metrics.set m_root_bound s.root_bound;
      export_basis st basis;
      (outcome, s)
    in
    match root with
    | `Settled outcome -> finish outcome
    | `Open ->
      let proven = Atomic.make false in
      let prefixes =
        try split_frontier st ~target:(4 * jobs)
        with Stop ->
          Atomic.set proven true;
          [||]
      in
      if Atomic.get proven then finish (Optimal (Option.get st.best))
      else if Array.length prefixes = 0 then
        (* The splitting pass exhausted the whole tree. *)
        (match st.best with
        | Some b -> finish (Optimal b)
        | None -> finish Infeasible)
      else begin
        (* The parallel driver budgets wall-clock time: [Sys.time]
           counts CPU seconds across every domain, which would charge a
           j-way search j times faster than the work it performs. *)
        let deadline = wall0 +. config.time_limit in
        let next = Atomic.make 0 in
        let worker_cancel () =
          cancel () || Atomic.get proven || Unix.gettimeofday () > deadline
        in
        let cfg = { config with time_limit = infinity; lp_root = false } in
        (* Frontier subtrees ship with a compact root-basis snapshot:
           each worker rebuilds its own persistent LP (domains share no
           mutable state) but warm-starts its first re-solve from the
           root's optimal basis instead of a cold phase 1. *)
        let root_basis =
          match st.splx with
          | Some lp when Simplex.Revised.has_basis lp ->
            Some (Simplex.Revised.snapshot lp)
          | _ -> None
        in
        let work () =
          let w = build_state model in
          w.shared_obj <- st.shared_obj;
          w.root_bound <- st.root_bound;
          w.cancel <- worker_cancel;
          w.splx_seed <- root_basis;
          (* Root cuts are globally valid, so workers keep them — and the
             worker LP must carry the same rows anyway for the root basis
             snapshot's fingerprint to match. *)
          w.extra_rows <- st.extra_rows;
          w.lp_deadline <- deadline;
          if not (propagate_root w) then (None, 0, 0, false)
          else begin
            let base = w.trail_len in
            let continue_ = ref true in
            while !continue_ do
              let i = Atomic.fetch_and_add next 1 in
              if i >= Array.length prefixes then continue_ := false
              else if w.stopped || worker_cancel () then begin
                (* Work remains but this worker must stop: without the
                   [stopped] mark a cancelled run with an empty incumbent
                   would be misread as a completed (Infeasible) search.
                   Stopping because the optimum was proven is fine — the
                   outcome logic discounts [stopped] under [proven]. *)
                w.stopped <- true;
                continue_ := false
              end
              else begin
                (if replay w prefixes.(i) then
                   (* Depth restarts at 0 so the worker gets LP bounds at
                      the top of its subtree, like the sequential search
                      does under the root (LP bounds hold at any node). *)
                   try dfs w cfg ~start:(Sys.time ()) ~depth:0
                   with Stop ->
                     (* [Stop] without [stopped]: an incumbent matched
                        the root bound — globally optimal, cancel all. *)
                     if not w.stopped then Atomic.set proven true);
                undo_to w base
              end
            done;
            (w.best, w.nodes, w.lp_calls, w.stopped)
          end
        in
        let others = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
        let mine = work () in
        let results = mine :: Array.to_list (Array.map Domain.join others) in
        let best =
          List.fold_left
            (fun acc (b, _, _, _) ->
              match (acc, b) with
              | None, b -> b
              | Some a, Some b when b.objective < a.objective -. 1e-9 ->
                Some b
              | acc, _ -> acc)
            st.best results
        in
        let extra_nodes =
          List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 results
        in
        let extra_lp =
          List.fold_left (fun acc (_, _, l, _) -> acc + l) 0 results
        in
        let stopped =
          List.exists (fun (_, _, _, s) -> s) results
          && not (Atomic.get proven)
        in
        let outcome =
          match (stopped, best) with
          | false, Some b -> Optimal b
          | false, None -> Infeasible
          | true, Some b -> Feasible b
          | true, None -> Unknown
        in
        finish ~extra_nodes ~extra_lp outcome
      end
  end

(* ------------------------------------------------------------------ *)
(* Presolve wrapper                                                   *)
(* ------------------------------------------------------------------ *)

(* Reduce the model before the search ever factorizes an LP: variable
   fixing, redundant/duplicate/dominated row elimination.  The core
   solver runs on the reduced model (with [presolve = false] so the
   inner driver never recurses); solutions are lifted back through
   [Presolve.restore] and objectives shifted by the fixed contribution. *)
let run_presolved ~run ~config ?warm_start model =
  let t0 = Sys.time () in
  match Presolve.reduce model with
  | Presolve.Infeasible ->
    Telemetry.Metrics.incr m_solves;
    ( Infeasible,
      {
        nodes = 0;
        lp_calls = 0;
        elapsed = Sys.time () -. t0;
        root_bound = neg_infinity;
      } )
  | Presolve.Reduced red ->
    Telemetry.Metrics.set m_presolve_vars (float_of_int red.Presolve.vars_fixed);
    Telemetry.Metrics.set m_presolve_rows
      (float_of_int red.Presolve.rows_dropped);
    if Model.num_vars red.Presolve.reduced = 0 then begin
      (* Everything fixed by propagation: the reduction IS the solution
         (cleanup checked every row under the fixings). *)
      Telemetry.Metrics.incr m_solves;
      let values = Presolve.restore red [||] in
      let outcome =
        if check_feasible model values then
          Optimal { values; objective = red.Presolve.obj_offset }
        else Infeasible
      in
      ( outcome,
        {
          nodes = 0;
          lp_calls = 0;
          elapsed = Sys.time () -. t0;
          root_bound = red.Presolve.obj_offset;
        } )
    end
    else begin
      let warm' =
        match warm_start with
        | Some w when Array.length w = Model.num_vars model ->
          Some (Presolve.project red w)
        | _ -> None
      in
      let ((outcome, s) : outcome * stats) =
        run { config with presolve = false } warm' red.Presolve.reduced
      in
      let lift (sol : solution) =
        {
          values = Presolve.restore red sol.values;
          objective = sol.objective +. red.Presolve.obj_offset;
        }
      in
      let outcome =
        match outcome with
        | Optimal sol -> Optimal (lift sol)
        | Feasible sol -> Feasible (lift sol)
        | Infeasible -> Infeasible
        | Unknown -> Unknown
      in
      (outcome, { s with root_bound = s.root_bound +. red.Presolve.obj_offset })
    end

let solve ?(config = default_config) ?(cancel = fun () -> false) ?warm_start
    ?basis model =
  if not config.presolve then solve_inner ~config ~cancel ?warm_start ?basis model
  else
    run_presolved ~config ?warm_start model
      ~run:(fun config warm m ->
        solve_inner ~config ~cancel ?warm_start:warm ?basis m)

let solve_parallel ?(config = default_config) ?(jobs = 1)
    ?(cancel = fun () -> false) ?warm_start ?basis model =
  if not config.presolve then
    solve_parallel_inner ~config ~jobs ~cancel ?warm_start ?basis model
  else
    run_presolved ~config ?warm_start model
      ~run:(fun config warm m ->
        solve_parallel_inner ~config ~jobs ~cancel ?warm_start:warm ?basis m)

(** Fault-injectable per-switch table programming with bounded retry.

    This is the runtime's only write path to the data plane: single-entry
    install/delete operations against a live table array, each of which
    the {!Fault_plan} may reject or time out.  A failed operation is
    retried up to [max_retries] times under exponential backoff with
    jitter (delays are {e simulated} — accumulated into {!stats}, never
    slept — so chaos runs stay fast and deterministic); an operation
    that exhausts its retries reports failure to the caller, which is
    what triggers transactional rollback one layer up.

    [force_set] models a controller-driven full-table resync: it bypasses
    fault injection entirely.  It is reserved for restoring a known-good
    snapshot (rollback's last resort) and for quarantine fencing, the
    two places where the runtime must win. *)

type config = {
  max_retries : int;  (** retries beyond the first attempt (default 4) *)
  base_backoff_s : float;  (** first retry delay (default 0.01) *)
  max_backoff_s : float;  (** per-retry backoff ceiling (default 1.0) *)
  max_total_backoff_s : float;
      (** cap on the {e accumulated} simulated backoff of one operation
          (default 60.0): however large [max_retries] is, a single
          operation's accounted delay can neither exceed this budget nor
          overflow the float accounting *)
}

val default_config : config

type stats = {
  mutable attempts : int;  (** operations sent, retries included *)
  mutable failures : int;  (** attempts the plan rejected *)
  mutable timeouts : int;  (** attempts the plan timed out *)
  mutable retries : int;  (** re-sends after a failed attempt *)
  mutable gave_up : int;  (** operations that exhausted their retries *)
  mutable forced_resyncs : int;  (** [force_set] calls *)
  mutable backoff_s : float;  (** total simulated backoff delay *)
  mutable last_op_backoff_s : float;
      (** simulated backoff of the most recent operation (clamped to
          [max_total_backoff_s]) *)
  mutable max_op_backoff_s : float;
      (** worst single-operation backoff seen so far *)
}

type t

val create : ?config:config -> fault:Fault_plan.t -> Netsim.entry list array -> t
(** Wraps the given live tables; the array is owned by the API from then
    on and mutated in place. *)

val tables : t -> Netsim.entry list array
(** The live tables (the caller must not mutate them directly). *)

val snapshot : t -> Netsim.entry list array
(** Deep-enough copy: a fresh array of the per-switch entry lists. *)

val stats : t -> stats
(** This api instance's own tallies (the journal-persisted view). *)

val copy_stats : stats -> stats
(** A detached snapshot of a stats record (wave frontiers persist one so
    a resumed update continues with the exact pre-crash tallies). *)

val restore_stats : t -> stats -> unit
(** Overwrite this instance's tallies with a previously captured copy. *)

val global_stats : unit -> stats
(** Process-wide aggregate across every api instance, read back from the
    telemetry registry (zeros while telemetry is disabled).  The
    [last_op_backoff_s] / [max_op_backoff_s] fields are per-instance
    notions and read 0 in this view; the backoff distribution lives in
    the [sdnplace_switch_op_backoff_seconds] histogram.  [backoff_s]
    (that histogram's sum) counts {e forward} operations only —
    rollback-compensation backoff is accounted separately in
    [sdnplace_switch_rollback_backoff_seconds], so an aborted wave or
    transaction does not double-count its ops' backoff here. *)

val compensating : t -> (unit -> 'a) -> 'a
(** Run [f] with this instance in compensation mode: operations still
    draw faults, retry, and tally into {!stats} exactly as usual, but
    their backoff is observed into the rollback histogram instead of
    [sdnplace_switch_op_backoff_seconds].  Wave and transaction rollback
    wrap their compensating installs/deletes in this. *)

val install : t -> switch:int -> Netsim.entry -> bool
(** Append the entry to the switch's table (retrying on faults); [false]
    when the operation ultimately failed. *)

val delete : t -> switch:int -> Netsim.entry -> bool
(** Remove the first structurally equal entry.  Deleting an absent entry
    succeeds without consuming a fault draw (idempotent delete). *)

val force_set : t -> switch:int -> Netsim.entry list -> unit
(** Controller resync: overwrite the switch's table, no faults. *)

(** Two-phase table updates with rollback.

    Moving the data plane from its current tables to a target is done
    add-before-delete: phase one installs every entry the target adds,
    phase two deletes every entry it drops.  Between the phases the
    tables hold a superset of both placements, so no packet a correct
    placement would drop can slip through mid-transition (transient
    extra drops of the outgoing placement are the safe direction for a
    firewall).  On commit each touched switch's table is set to the
    exact target order — the per-entry operations decide {e admission},
    the final write fixes {e priority order}, mirroring how a
    controller rewrites TCAM priorities after the content settles.

    If any operation exhausts its retries the transaction rolls back:
    compensating deletes/installs undo the applied operations (these
    also run through the fault-injected API — a rollback may itself
    struggle), and any switch whose compensation fails is force-resynced
    from the pre-transaction snapshot.  Either way the tables end
    byte-identical to their pre-transaction state. *)

type outcome =
  | Committed
  | Rolled_back of { switch : int; op : string }
      (** first unrecoverable operation: which switch and ["install"] /
          ["delete"] *)

val apply :
  ?observe:(switch:int -> op:string -> unit) ->
  api:Switch_api.t ->
  Netsim.entry list array ->
  outcome
(** Raises [Invalid_argument] when the target's switch count differs
    from the live tables'.

    [observe] is called immediately {e before} each per-entry operation
    of the two phases (rollback compensation is not observed) — the hook
    the crash-safe journal uses to place mid-apply kill points.  An
    exception raised by [observe] aborts the transaction as-is, leaving
    the tables torn: exactly the situation WAL recovery must repair. *)

val restore : api:Switch_api.t -> Netsim.entry list array -> unit
(** Force-resync every switch whose live table differs from the given
    tables (a controller-driven snapshot restore: no fault draws are
    consumed).  Idempotent — restoring twice is a no-op, and restoring
    tables the data plane already holds touches nothing.  This is both
    rollback's last resort and the recovery path's tool for resolving a
    transaction that was torn by a crash.  Raises [Invalid_argument] on
    a switch count mismatch. *)

type t =
  | Install of {
      ingress : int;
      policy : Acl.Policy.t;
      paths : Routing.Path.t list;
    }
  | Reroute of { ingresses : int list; paths : Routing.Path.t list }
  | Update_policy of { ingress : int; policy : Acl.Policy.t }
  | Remove of { ingresses : int list }
  | Switch_fail of { switch : int }
  | Link_fail of { u : int; v : int }
  | Capacity_shrink of { switch : int; capacity : int }

let ints is = String.concat "," (List.map string_of_int is)

let describe = function
  | Install { ingress; policy; paths } ->
    Printf.sprintf "install(ingress=%d, rules=%d, paths=%d)" ingress
      (Acl.Policy.size policy) (List.length paths)
  | Reroute { ingresses; paths } ->
    Printf.sprintf "reroute(ingresses=[%s], paths=%d)" (ints ingresses)
      (List.length paths)
  | Update_policy { ingress; policy } ->
    Printf.sprintf "update_policy(ingress=%d, rules=%d)" ingress
      (Acl.Policy.size policy)
  | Remove { ingresses } -> Printf.sprintf "remove(ingresses=[%s])" (ints ingresses)
  | Switch_fail { switch } -> Printf.sprintf "switch_fail(switch=%d)" switch
  | Link_fail { u; v } -> Printf.sprintf "link_fail(%d-%d)" u v
  | Capacity_shrink { switch; capacity } ->
    Printf.sprintf "capacity_shrink(switch=%d, capacity=%d)" switch capacity

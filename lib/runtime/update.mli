(** Per-packet-consistent update scheduling with crash-resumable waves.

    {!Transaction} moves the data plane add-before-delete, which keeps a
    firewall safe (transient extra drops only) but not {e consistent}: a
    packet in flight mid-transaction can match a mix of the outgoing and
    incoming placements.  This module upgrades an update to per-packet
    consistency with the classic two-phase tag-and-match construction,
    executed as a sequence of {e waves} with a barrier after each:

    + {b shadow waves} (deepest switches first) install a version-tagged
      copy of every new-placement entry an affected ingress needs, keyed
      on {!Netsim.vtag}; invisible to live (plain-tagged) traffic;
    + the {b flip wave} installs a {!Netsim.stamp_tag} marker per
      affected ingress at its attachment switch — from this barrier on,
      affected traffic is walked with the version tag and sees exactly
      the new placement's shadows;
    + {b gc-old} deletes the outgoing placement's entries (dead, since
      every affected ingress flipped);
    + {b install-new} appends the incoming placement's plain entries
      (invisible to version-tagged walks) and, at its commit,
      renormalises each touched switch to target priority order;
    + {b unflip} removes the stamps — plain walks now see exactly the
      target — and {b gc-shadow} removes the version-tagged copies.

    Every intermediate state shows each ingress entirely-old or
    entirely-new policy, which the barrier after each wave re-proves by
    walking probe packets over live tables against the old and new
    placements' verdicts.

    A failed operation triggers bounded retry of its wave: applied
    operations are compensated (through the same faulty API, in
    {!Switch_api.compensating} mode) and the wave restarts from its
    entry snapshot.  A wave that exhausts its retries aborts the whole
    update back to the pre-update tables; the caller (see
    {!Engine.config.update_mode}) then degrades to the legacy
    single-transaction path.

    Each committed wave yields a {!frontier} — tables, fault-plan state
    and api stats — which the journal persists ({!Journal.Wal}'s
    [Wave_begin]/[Wave_commit] records) so that a crash mid-update
    resumes from the last committed wave with the exact remaining fault
    sequence, converging byte-identically to an uncrashed run. *)

type ingress_paths = {
  ingress : int;
  old_paths : Routing.Path.t list;  (** routed paths before the update *)
  new_paths : Routing.Path.t list;  (** routed paths after the update *)
  probes : Ternary.Packet.t list;
      (** packets the barrier walks for this ingress *)
}

type op =
  | Install of { switch : int; entry : Netsim.entry }
  | Delete of { switch : int; entry : Netsim.entry }

type wave = {
  label : string;  (** ["shadow-depth-N"], ["flip"], ["gc-old"], ... *)
  ops : op list;
  reorders : (int * Netsim.entry list) list;
      (** content-preserving priority rewrites applied at wave commit
          (controller writes, no fault draws) *)
}

type plan = {
  waves : wave array;
  flip_wave : int;  (** index of the flip wave, [-1] when nothing flips *)
  unflip_wave : int;
  affected : int list;
      (** ingresses whose projection or paths change, sorted *)
  corpus : ingress_paths list;
  old_tables : Netsim.entry list array;  (** detached pre-update snapshot *)
  target : Netsim.entry list array;
  shadow_headroom : int array;
      (** per-switch transient entries (shadows + stamps) beyond the
          placements' own *)
  base_occupancy : int array;  (** per-switch [max |old| |target|] *)
  peak_occupancy : int array;
      (** per-switch maximum simulated occupancy over the whole update;
          bounded by base + headroom *)
}

type frontier = {
  f_wave : int;  (** index of the last committed wave *)
  f_tables : Netsim.entry list array;
  f_fault : Fault_plan.state;
  f_stats : Switch_api.stats;
}
(** Everything needed to resume after this wave: plain data, safe to
    [Marshal] into a WAL record. *)

type observer = {
  on_wave_begin : wave:int -> unit;
  on_wave_commit : wave:int -> frontier:frontier -> unit;
}

type outcome =
  | Committed
  | Aborted of { switch : int; op : string }
      (** [op] is ["install"] / ["delete"] for an exhausted operation
          ([switch] = its switch), or ["verify"] (switch [-1]) when a
          barrier caught a consistency violation *)

type result = {
  outcome : outcome;
  waves_committed : int;
      (** total committed waves, resumed ones included — a recovered run
          reports the same count as an uncrashed one *)
  wave_rollbacks : int;
  violations : int;  (** probe walks that saw mixed policy (0 on a sound plan) *)
}

val build :
  attach:(int -> int) ->
  corpus:ingress_paths list ->
  old_tables:Netsim.entry list array ->
  target:Netsim.entry list array ->
  plan
(** Plan the wave schedule moving [old_tables] to [target].  [attach]
    gives an ingress's attachment switch, used to place its flip stamp
    when it has no new path.  Deterministic: equal inputs yield equal
    plans.  The whole schedule is simulated at plan time; raises
    [Invalid_argument] if the simulated final state is not exactly the
    target (a planner bug, never data-dependent). *)

val execute :
  ?wave_retries:int ->
  ?observer:observer ->
  ?on_op:(switch:int -> op:string -> unit) ->
  ?resume:frontier ->
  api:Switch_api.t ->
  fault:Fault_plan.t ->
  plan ->
  result
(** Run the plan's waves against the live tables.  [wave_retries]
    (default 1) bounds how often a wave is rolled back to its entry
    snapshot and retried before the update aborts to the pre-update
    tables.  [on_op] is called before each per-entry operation (the
    journal's mid-apply kill-point hook); [observer] fires at wave
    boundaries, after the barrier has re-proved consistency.

    With [resume], the pre-update undo point is captured first (recovery
    hands over tables resynced to it), then the frontier's tables,
    fault-plan state and stats are restored, the frontier's consistency
    is re-proved, and execution continues at wave [f_wave + 1] —
    committed waves are not re-executed and fire no hooks. *)

val inconsistencies :
  plan -> live:Netsim.entry list array -> committed:int -> int
(** The barrier check itself: number of probe walks over [live] that
    disagree with the single placement (old or new) the ingress must be
    seeing with [committed] waves in.  Exposed for property tests. *)

val violations_total : unit -> int
(** Process-wide count of consistency violations ever observed by a
    barrier — independent of telemetry, so chaos benches can assert on
    it even with metrics off. *)

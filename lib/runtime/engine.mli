(** The fault-tolerant reconciliation loop.

    The engine owns the controller's view of a running network: a
    last-known-good {!Placement.Solution}, the live per-switch tables
    behind a fault-injectable {!Switch_api}, and the set of quarantined
    ingresses.  {!handle} absorbs one {!Event} under a wall-clock
    deadline by walking the {b graceful-degradation ladder}:

    + {b incremental} — a deadline-bounded {!Placement.Incremental}
      sub-solve (half the event budget): frozen placements stay, only
      the affected ingresses move;
    + {b full re-solve} — a from-scratch {!Placement.Solve.run} with
      whatever budget remains, using the configured engine (the
      portfolio when [jobs > 1]);
    + {b greedy} — the {!Placement.Baseline} ingress-first heuristic,
      effectively instant;
    + {b quarantine} — fail closed: the last-good tables stay, the
      affected ingresses are fenced with a highest-priority DROP-any
      entry at their attachment switch, and the event is recorded as
      degraded.

    Whichever rung produces a placement, the table delta is applied as a
    two-phase add-before-delete {!Transaction}; an unrecoverable switch
    failure rolls the tables back to the pre-event state and drops to
    the quarantine rung.  After {e every} event the active placement is
    re-verified ({!Placement.Verify} structural + semantic, a packet
    walk of the {e live} tables against every policy, and a fail-closed
    check that quarantined ingresses' packets are dropped); the result
    lands in the event's {!Report}.

    Determinism: all randomness (fault draws, backoff jitter, re-routing
    path choice, verification probes) flows from seeds fixed at
    {!create}, so equal seeds and equal event streams give equal report
    {!Report.signature} sequences. *)

type config = {
  deadline_s : float;  (** per-event wall-clock budget (default 30) *)
  solve_options : Placement.Solve.options;
      (** solver options for the incremental and full rungs *)
  rungs : Report.rung list;
      (** enabled {e solve} rungs, tried in ladder order; quarantine is
          always available as the floor (default: incremental,
          full-resolve, greedy) *)
  switch_config : Switch_api.config;  (** retry/backoff policy *)
  verify_samples : int;  (** random probe packets per path (default 10) *)
  verify_seed : int;  (** seed for verification + re-routing draws *)
}

val default_config : config

type t

val create :
  ?config:config -> ?fault:Fault_plan.t -> Placement.Solution.t -> t
(** Boots the runtime from an initial placement: the live tables are the
    solution's tables ({!Placement.Tables.to_netsim}), nothing is
    quarantined, nothing is dead. *)

val good : t -> Placement.Solution.t
(** The last-known-good placement (instance included). *)

val netsim : t -> Netsim.t
(** The live data plane as a simulator (snapshot). *)

val live_entries : t -> int
(** Total entries currently installed. *)

val quarantined : t -> int list
(** Fenced ingresses, ascending. *)

val dead_switches : t -> int list

val handle : t -> Event.t -> Report.t
(** Absorb one event.  Never raises on malformed events (they are
    rejected in the report); never leaves the tables torn. *)

val run : t -> Event.t list -> Report.t list
(** [handle] in sequence, reports in event order. *)

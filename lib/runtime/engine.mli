(** The fault-tolerant reconciliation loop.

    The engine owns the controller's view of a running network: a
    last-known-good {!Placement.Solution}, the live per-switch tables
    behind a fault-injectable {!Switch_api}, and the set of quarantined
    ingresses.  {!handle} absorbs one {!Event} under a wall-clock
    deadline by walking the {b graceful-degradation ladder}:

    + {b incremental} — a deadline-bounded {!Placement.Incremental}
      sub-solve (half the event budget): frozen placements stay, only
      the affected ingresses move;
    + {b full re-solve} — a from-scratch {!Placement.Solve.run} with
      whatever budget remains, using the configured engine (the
      portfolio when [jobs > 1]);
    + {b greedy} — the {!Placement.Baseline} ingress-first heuristic,
      effectively instant;
    + {b quarantine} — fail closed: the last-good tables stay, the
      affected ingresses are fenced with a highest-priority DROP-any
      entry at their attachment switch, and the event is recorded as
      degraded.

    Whichever rung produces a placement, the table delta is applied by
    the {e write ladder}: the per-packet-consistent wave scheduler
    ({!Update}) by default, degrading to the legacy two-phase
    add-before-delete {!Transaction} (reported as
    {!Report.Committed_fallback}) when the wave update aborts; an
    unrecoverable legacy transaction rolls the tables back to the
    pre-event state and drops to the quarantine rung.  After {e every} event the active placement is
    re-verified ({!Placement.Verify} structural + semantic, a packet
    walk of the {e live} tables against every policy, and a fail-closed
    check that quarantined ingresses' packets are dropped); the result
    lands in the event's {!Report}.

    Determinism: all randomness (fault draws, backoff jitter, re-routing
    path choice, verification probes) flows from seeds fixed at
    {!create}, so equal seeds and equal event streams give equal report
    {!Report.signature} sequences. *)

type update_mode =
  | Consistent
      (** wave-scheduled per-packet-consistent updates ({!Update}),
          falling back to the legacy transaction on abort (default) *)
  | Legacy  (** single two-phase {!Transaction} only *)

type config = {
  deadline_s : float;  (** per-event wall-clock budget (default 30) *)
  solve_options : Placement.Solve.options;
      (** solver options for the incremental and full rungs *)
  rungs : Report.rung list;
      (** enabled {e solve} rungs, tried in ladder order; quarantine is
          always available as the floor (default: incremental,
          full-resolve, greedy) *)
  switch_config : Switch_api.config;  (** retry/backoff policy *)
  verify_samples : int;  (** random probe packets per path (default 10) *)
  verify_seed : int;  (** seed for verification + re-routing draws *)
  update_mode : update_mode;
  update_wave_retries : int;
      (** wave-level rollback/retry budget before a consistent update
          aborts to the legacy path (default 1) *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?fault:Fault_plan.t ->
  ?now:(unit -> float) ->
  Placement.Solution.t ->
  t
(** Boots the runtime from an initial placement: the live tables are the
    solution's tables ({!Placement.Tables.to_netsim}), nothing is
    quarantined, nothing is dead.

    [now] is the engine's clock (default [Unix.gettimeofday]), consulted
    only for the per-event deadline and the report's [wall_s].  Tests
    freeze it to make deadline behaviour deterministic without
    sleeping. *)

type persisted
(** The engine's complete durable state: last-good solution, quarantine
    records, dead infrastructure, live tables, retry statistics, and
    {e every} PRNG stream (fault draws, re-routing, verification) — so a
    restored engine replays future events byte-for-byte like the
    original.  Plain data, safe to [Marshal] (the clock and config are
    deliberately excluded; they are re-supplied at {!restore}). *)

val capture : t -> persisted
(** A cheap structural view sharing the engine's mutable state —
    serialize it before handling further events. *)

val restore : ?config:config -> ?now:(unit -> float) -> persisted -> t
(** Rebuild an engine from captured state.  [config] must match the one
    the original engine ran with for replay determinism (solver options
    and ladder rungs change solve outcomes). *)

val table_snapshot : t -> Netsim.entry list array
(** A deep-enough copy of the live per-switch tables. *)

val resync : t -> Netsim.entry list array -> unit
(** Force-resync the data plane to the given tables (see
    {!Transaction.restore}) — the recovery path's tool for resolving a
    transaction a crash left torn. *)

val good : t -> Placement.Solution.t
(** The last-known-good placement (instance included). *)

val netsim : t -> Netsim.t
(** The live data plane as a simulator (snapshot). *)

val live_entries : t -> int
(** Total entries currently installed. *)

val quarantined : t -> int list
(** Fenced ingresses, ascending. *)

val dead_switches : t -> int list

type tx_observer = {
  on_intent :
    undo:Netsim.entry list array -> redo:Netsim.entry list array -> unit;
      (** called once per data-plane transaction, after the target is
          fixed and before the first operation: [undo] is the
          pre-transaction snapshot, [redo] the target tables *)
  on_op : switch:int -> op:string -> unit;
      (** called before each per-entry install/delete of the two phases *)
  on_commit : unit -> unit;
      (** called right after the transaction committed, before the
          engine adopts the new solution *)
  on_wave_begin : wave:int -> unit;
      (** called as a consistent-update wave starts issuing operations *)
  on_wave_commit : wave:int -> frontier:Update.frontier -> unit;
      (** called after the wave's barrier re-proved consistency, with
          the frontier the journal persists for crash-resume *)
}
(** Write-ahead hooks around the data-plane write — what the crash-safe
    journal uses to log transaction intent/commit and wave-boundary
    records and to place mid-apply kill points.  Exceptions raised by
    the hooks propagate out of {!handle} (a simulated crash). *)

val reweight : t -> float array -> unit
(** Replace the values of the engine's {!Placement.Encode.Switch_weighted}
    objective vector in place — the online re-weighting hook the traffic
    layer pulls between events when observed popularity drifts.  Affects
    every subsequent solve (incremental and full rungs alike).  Raises
    [Invalid_argument] when the configured objective is not
    [Switch_weighted] or the length differs.  Callers that journal the
    engine must persist the weights themselves (e.g. in the client blob)
    and re-apply them before recovery replays events, or replayed solves
    run under different costs than the original. *)

val handle :
  ?tx:tx_observer ->
  ?resume:Update.frontier ->
  ?rungs:Report.rung list ->
  t ->
  Event.t ->
  Report.t
(** Absorb one event.  Never raises on malformed events (they are
    rejected in the report); never leaves the tables torn.

    [resume] continues a consistent update that a crash interrupted: the
    event is re-planned from the same pre-event engine state, and the
    update's execution restores the frontier (tables, fault-plan state,
    api stats), re-proves its consistency and carries on from the next
    wave — converging byte-identically to an uncrashed run.

    [rungs] restricts the {e solve} rungs of the ladder for this event
    only (quarantine stays available as the floor), overriding the
    config's rung list — the serving layer's circuit breaker uses it to
    pin a misbehaving tenant to the cheap greedy/fail-closed rungs.  A
    replayed event must be re-handled with the same restriction to
    reproduce the same report (the journal persists it per event). *)

val run : ?tx:tx_observer -> t -> Event.t list -> Report.t list
(** [handle] in sequence, reports in event order. *)

(** Structured transition reports: one per absorbed event.

    The report names the {e rung} of the graceful-degradation ladder
    that produced the transition, how the data-plane write went, what
    got quarantined and whether post-event verification passed —
    everything an operator (or a test) needs to audit how the runtime
    degraded under pressure.

    {!signature} renders every deterministic field and nothing else (no
    wall-clock durations), so two chaos runs from the same seed must
    produce identical signature sequences — the replayability contract
    the test suite enforces. *)

type rung =
  | Noop  (** pure bookkeeping (e.g. a capacity shrink that still fits) *)
  | Incremental  (** deadline-bounded {!Placement.Incremental} sub-solve *)
  | Full_resolve  (** from-scratch re-solve with the remaining budget *)
  | Greedy  (** {!Placement.Baseline} ingress-first heuristic *)
  | Quarantine
      (** fail closed: last-good tables kept, affected ingresses fenced *)

val rung_name : rung -> string

type applied =
  | Committed  (** consistent update (or transaction) committed *)
  | Committed_fallback
      (** the consistent wave update aborted and the legacy
          single-transaction path committed instead — correct outcome,
          degraded consistency guarantee *)
  | Rolled_back of string  (** unrecoverable install/delete; which op *)
  | Kept_last_good  (** no transaction attempted (quarantine / noop) *)

val applied_name : applied -> string

type t = {
  event : string;  (** {!Event.describe} of the absorbed event *)
  rung : rung;
  solve_status : string;  (** final solver status on that rung, or "-" *)
  applied : applied;
  newly_quarantined : int list;  (** ingresses this event fenced *)
  quarantined : int list;  (** total under quarantine afterwards *)
  verified : bool;  (** post-event placement + forwarding checks *)
  entries : int;  (** live data-plane entries after the event *)
  attempts : int;  (** switch operations sent (retries included) *)
  failures : int;  (** injected failures observed *)
  timeouts : int;  (** injected timeouts observed *)
  retries : int;
  forced_resyncs : int;
  waves : int;
      (** consistent-update waves committed for this event (0 in legacy
          mode or when no update ran) *)
  wall_s : float;  (** event handling time — excluded from {!signature} *)
}

val signature : t -> string
(** Canonical timing-free rendering; equal seeds must give equal
    signature sequences. *)

val pp : Format.formatter -> t -> unit

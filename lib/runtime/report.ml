type rung = Noop | Incremental | Full_resolve | Greedy | Quarantine

let rung_name = function
  | Noop -> "noop"
  | Incremental -> "incremental"
  | Full_resolve -> "full-resolve"
  | Greedy -> "greedy"
  | Quarantine -> "quarantine"

type applied =
  | Committed
  | Committed_fallback
  | Rolled_back of string
  | Kept_last_good

let applied_name = function
  | Committed -> "committed"
  | Committed_fallback -> "committed-legacy-fallback"
  | Rolled_back op -> "rolled-back:" ^ op
  | Kept_last_good -> "kept-last-good"

type t = {
  event : string;
  rung : rung;
  solve_status : string;
  applied : applied;
  newly_quarantined : int list;
  quarantined : int list;
  verified : bool;
  entries : int;
  attempts : int;
  failures : int;
  timeouts : int;
  retries : int;
  forced_resyncs : int;
  waves : int;
  wall_s : float;
}

let signature r =
  Printf.sprintf
    "%s | rung=%s status=%s applied=%s newq=[%s] q=[%s] verified=%b \
     entries=%d ops=%d/%d/%d/%d resync=%d waves=%d"
    r.event (rung_name r.rung) r.solve_status (applied_name r.applied)
    (String.concat "," (List.map string_of_int r.newly_quarantined))
    (String.concat "," (List.map string_of_int r.quarantined))
    r.verified r.entries r.attempts r.failures r.timeouts r.retries
    r.forced_resyncs r.waves

let pp fmt r = Format.fprintf fmt "%s (%.3fs)" (signature r) r.wall_s

open Placement

type update_mode = Consistent | Legacy

type config = {
  deadline_s : float;
  solve_options : Solve.options;
  rungs : Report.rung list;
  switch_config : Switch_api.config;
  verify_samples : int;
  verify_seed : int;
  update_mode : update_mode;
  update_wave_retries : int;
}

let default_config =
  {
    deadline_s = 30.0;
    solve_options = Solve.default_options;
    rungs = [ Report.Incremental; Report.Full_resolve; Report.Greedy ];
    switch_config = Switch_api.default_config;
    verify_samples = 10;
    verify_seed = 0x5EED;
    update_mode = Consistent;
    update_wave_retries = 1;
  }

let m_rung name =
  Telemetry.Metrics.counter ~help:"events by degradation-ladder rung reached"
    ~labels:[ ("rung", name) ]
    "sdnplace_runtime_events_total"

let m_rung_noop = m_rung "noop"

let m_rung_incremental = m_rung "incremental"

let m_rung_full = m_rung "full_resolve"

let m_rung_greedy = m_rung "greedy"

let m_rung_quarantine = m_rung "quarantine"

let rung_counter = function
  | Report.Noop -> m_rung_noop
  | Report.Incremental -> m_rung_incremental
  | Report.Full_resolve -> m_rung_full
  | Report.Greedy -> m_rung_greedy
  | Report.Quarantine -> m_rung_quarantine

let m_event_s =
  Telemetry.Metrics.histogram ~help:"per-event reconciliation wall time"
    "sdnplace_runtime_event_seconds"

let m_rollbacks =
  Telemetry.Metrics.counter ~help:"transactions rolled back"
    "sdnplace_runtime_rollbacks_total"

let m_quarantined =
  Telemetry.Metrics.counter ~help:"ingresses newly fenced into quarantine"
    "sdnplace_runtime_quarantined_ingresses_total"

let m_verify_failures =
  Telemetry.Metrics.counter ~help:"events failing post-event verification"
    "sdnplace_runtime_verify_failures_total"

(* A fenced ingress: the paths and probe packets remembered at quarantine
   time, so fail-closed verification keeps working after the policy is
   stripped from the good solution. *)
type fenced = {
  q_ingress : int;
  q_paths : Routing.Path.t list;
  q_probes : Ternary.Packet.t list;
}

type t = {
  config : config;
  now : unit -> float;
  fault : Fault_plan.t;
  api : Switch_api.t;
  mutable good : Solution.t;
  mutable quarantine : fenced list;
  mutable dead_switches : int list;
  mutable dead_links : (int * int) list;
  route_prng : Prng.t;
  verify_prng : Prng.t;
}

let inst t = t.good.Solution.instance
let net t = (inst t).Instance.net

let sort_uniq l = List.sort_uniq compare l

let rec take n = function
  | [] -> []
  | x :: xs -> if n <= 0 then [] else x :: take (n - 1) xs

let tables_of_solution (sol : Solution.t) =
  let { Tables.netsim; splits = _ } = Tables.to_netsim sol in
  let n = Topo.Net.num_switches sol.Solution.instance.Instance.net in
  Array.init n (Netsim.table netsim)

let create ?(config = default_config) ?(fault = Fault_plan.faultless ())
    ?(now = Unix.gettimeofday) good =
  let api =
    Switch_api.create ~config:config.switch_config ~fault
      (tables_of_solution good)
  in
  {
    config;
    now;
    fault;
    api;
    good;
    quarantine = [];
    dead_switches = [];
    dead_links = [];
    route_prng = Prng.create ((config.verify_seed * 2) + 1);
    verify_prng = Prng.create config.verify_seed;
  }

let reweight t weights =
  match t.config.solve_options.Solve.objective with
  | Encode.Switch_weighted w ->
      if Array.length w <> Array.length weights then
        invalid_arg "Engine.reweight: weight vector length mismatch";
      Array.blit weights 0 w 0 (Array.length w)
  | Encode.Total_rules | Encode.Upstream_drops ->
      invalid_arg "Engine.reweight: objective is not Switch_weighted"

(* ------------------------------------------------------------------ *)
(* Durable state: everything a crash-safe journal must persist to
   rebuild an engine that behaves byte-for-byte like the original.
   The clock and config stay out (closures / caller policy) and are
   re-supplied at [restore]; [p_fault] and the fault plan referenced
   inside [p_api] are the same object, and [Marshal] preserves that
   sharing as long as the whole record is serialized in one call. *)

type persisted = {
  p_api : Switch_api.t;
  p_fault : Fault_plan.t;
  p_good : Solution.t;
  p_quarantine : fenced list;
  p_dead_switches : int list;
  p_dead_links : (int * int) list;
  p_route_prng : Prng.t;
  p_verify_prng : Prng.t;
}

let capture t =
  {
    p_api = t.api;
    p_fault = t.fault;
    p_good = t.good;
    p_quarantine = t.quarantine;
    p_dead_switches = t.dead_switches;
    p_dead_links = t.dead_links;
    p_route_prng = t.route_prng;
    p_verify_prng = t.verify_prng;
  }

let restore ?(config = default_config) ?(now = Unix.gettimeofday) p =
  {
    config;
    now;
    fault = p.p_fault;
    api = p.p_api;
    good = p.p_good;
    quarantine = p.p_quarantine;
    dead_switches = p.p_dead_switches;
    dead_links = p.p_dead_links;
    route_prng = p.p_route_prng;
    verify_prng = p.p_verify_prng;
  }

let good t = t.good
let netsim t = Netsim.make (net t) (Switch_api.snapshot t.api)
let table_snapshot t = Switch_api.snapshot t.api
let resync t tables = Transaction.restore ~api:t.api tables

let live_entries t =
  Array.fold_left (fun acc es -> acc + List.length es) 0 (Switch_api.tables t.api)

let quarantined t = List.sort compare (List.map (fun q -> q.q_ingress) t.quarantine)
let dead_switches t = List.sort compare t.dead_switches

(* ------------------------------------------------------------------ *)
(* Quarantine fencing                                                  *)

let fence_entry i =
  {
    Netsim.tags = [ i ];
    rule =
      Acl.Rule.make ~field:Ternary.Field.any ~action:Acl.Rule.Drop
        ~priority:max_int;
  }

let is_fence i (e : Netsim.entry) =
  e.Netsim.tags = [ i ] && e.Netsim.rule.Acl.Rule.priority = max_int

let force_fence t q =
  let k = Topo.Net.host_attach (net t) q.q_ingress in
  let live = Switch_api.tables t.api in
  if not (List.exists (is_fence q.q_ingress) live.(k)) then
    Switch_api.force_set t.api ~switch:k (fence_entry q.q_ingress :: live.(k))

(* ------------------------------------------------------------------ *)
(* Dead infrastructure and re-routing                                  *)

let link_key u v = (min u v, max u v)

let path_alive t (p : Routing.Path.t) =
  let sw = p.Routing.Path.switches in
  let ok = ref (not (Array.exists (fun k -> List.mem k t.dead_switches) sw)) in
  Array.iteri
    (fun idx k ->
      if idx > 0 && List.mem (link_key sw.(idx - 1) k) t.dead_links then
        ok := false)
    sw;
  !ok

let pruned_net t =
  let n = net t in
  let dead k = List.mem k t.dead_switches in
  let edges =
    List.filter
      (fun (a, b) ->
        not (dead a || dead b || List.mem (link_key a b) t.dead_links))
      (Topo.Net.edges n)
  in
  let kinds = Array.init (Topo.Net.num_switches n) (Topo.Net.kind n) in
  let host_attach = Array.init (Topo.Net.num_hosts n) (Topo.Net.host_attach n) in
  Topo.Net.create ~kinds ~num_switches:(Topo.Net.num_switches n) ~edges
    ~host_attach ()

let reroute_path t pruned (p : Routing.Path.t) =
  let src = Topo.Net.host_attach (net t) p.Routing.Path.ingress in
  let dst = Topo.Net.host_attach (net t) p.Routing.Path.egress in
  if List.mem src t.dead_switches || List.mem dst t.dead_switches then None
  else
    match Routing.Shortest.random_shortest_path t.route_prng pruned ~src ~dst with
    | Some switches ->
      Some
        (Routing.Path.make ~flow:p.Routing.Path.flow
           ~ingress:p.Routing.Path.ingress ~egress:p.Routing.Path.egress
           ~switches ())
    | None -> None

(* Keep alive paths as they are; re-route the rest around the dead
   infrastructure.  Returns the surviving paths plus the ingresses that
   lost every path. *)
let fix_paths t paths =
  let pruned = lazy (pruned_net t) in
  let fixed =
    List.filter_map
      (fun p ->
        if path_alive t p then Some p else reroute_path t (Lazy.force pruned) p)
      paths
  in
  let ingress_of (p : Routing.Path.t) = p.Routing.Path.ingress in
  let lost =
    List.filter
      (fun i -> not (List.exists (fun p -> ingress_of p = i) fixed))
      (sort_uniq (List.map ingress_of paths))
  in
  (fixed, lost)

(* ------------------------------------------------------------------ *)
(* Event planning                                                      *)

(* What an event asks of the placement layer: tear down [strip], then
   (re-)place [sub_policies] over [sub_paths] under [capacities].
   [unroutable] ingresses have no live path and go straight to
   quarantine; [release] are fenced ingresses whose tenant is leaving,
   so their fence is lifted. *)
type goal = {
  strip : int list;
  sub_policies : (int * Acl.Policy.t) list;
  sub_paths : Routing.Path.t list;
  capacities : int array;
  unroutable : int list;
  release : int list;
}

let cur_paths t i = Routing.Table.paths_from (inst t).Instance.routing i
let has_policy t i = Instance.policy_of (inst t) i <> None
let in_quarantine t i = List.exists (fun q -> q.q_ingress = i) t.quarantine

(* Re-place a set of existing ingresses (after infrastructure loss or a
   capacity shrink): their current paths are fixed up around the dead
   infrastructure first. *)
let replan t affected ~capacities =
  let affected = sort_uniq affected in
  let fixed, _ = fix_paths t (List.concat_map (cur_paths t) affected) in
  let routable i =
    List.exists (fun (p : Routing.Path.t) -> p.Routing.Path.ingress = i) fixed
  in
  let unroutable = List.filter (fun i -> not (routable i)) affected in
  let sub_policies =
    List.filter_map
      (fun i ->
        if routable i then
          Option.map (fun q -> (i, q)) (Instance.policy_of (inst t) i)
        else None)
      affected
  in
  Ok
    {
      strip = affected;
      sub_policies;
      sub_paths = fixed;
      capacities;
      unroutable;
      release = [];
    }

let plan t event =
  let caps = (inst t).Instance.capacities in
  let n = net t in
  match event with
  | Event.Install { ingress; policy; paths } ->
    if ingress < 0 || ingress >= Topo.Net.num_hosts n then Error "unknown ingress"
    else if has_policy t ingress then Error "ingress already carries a policy"
    else if paths = [] then Error "no paths"
    else if
      List.exists
        (fun (p : Routing.Path.t) -> p.Routing.Path.ingress <> ingress)
        paths
    then Error "path/ingress mismatch"
    else
      let fixed, _ = fix_paths t paths in
      if fixed = [] then
        Ok
          {
            strip = [];
            sub_policies = [];
            sub_paths = [];
            capacities = caps;
            unroutable = [ ingress ];
            release = [];
          }
      else
        Ok
          {
            strip = [];
            sub_policies = [ (ingress, policy) ];
            sub_paths = fixed;
            capacities = caps;
            unroutable = [];
            release = [];
          }
  | Event.Reroute { ingresses; paths } ->
    let ingresses = sort_uniq ingresses in
    if ingresses = [] then Error "no ingresses"
    else if List.exists (fun i -> not (has_policy t i)) ingresses then
      Error "reroute of an ingress without a policy"
    else if
      List.exists
        (fun (p : Routing.Path.t) ->
          not (List.mem p.Routing.Path.ingress ingresses))
        paths
    then Error "path/ingress mismatch"
    else
      let fixed, _ = fix_paths t paths in
      let routable i =
        List.exists (fun (p : Routing.Path.t) -> p.Routing.Path.ingress = i) fixed
      in
      let unroutable = List.filter (fun i -> not (routable i)) ingresses in
      let sub_policies =
        List.filter_map
          (fun i ->
            if routable i then
              Option.map (fun q -> (i, q)) (Instance.policy_of (inst t) i)
            else None)
          ingresses
      in
      Ok
        {
          strip = ingresses;
          sub_policies;
          sub_paths = fixed;
          capacities = caps;
          unroutable;
          release = [];
        }
  | Event.Update_policy { ingress; policy } ->
    if not (has_policy t ingress) then
      Error "update of an ingress without a policy"
    else
      let fixed, _ = fix_paths t (cur_paths t ingress) in
      if fixed = [] then
        Ok
          {
            strip = [ ingress ];
            sub_policies = [];
            sub_paths = [];
            capacities = caps;
            unroutable = [ ingress ];
            release = [];
          }
      else
        Ok
          {
            strip = [ ingress ];
            sub_policies = [ (ingress, policy) ];
            sub_paths = fixed;
            capacities = caps;
            unroutable = [];
            release = [];
          }
  | Event.Remove { ingresses } ->
    let ingresses = sort_uniq ingresses in
    let present = List.filter (has_policy t) ingresses in
    let release = List.filter (in_quarantine t) ingresses in
    if present = [] && release = [] then Error "no such ingress"
    else
      Ok
        {
          strip = present;
          sub_policies = [];
          sub_paths = [];
          capacities = caps;
          unroutable = [];
          release;
        }
  | Event.Switch_fail { switch } ->
    if switch < 0 || switch >= Topo.Net.num_switches n then
      Error "unknown switch"
    else if List.mem switch t.dead_switches then Error "switch already dead"
    else begin
      t.dead_switches <- switch :: t.dead_switches;
      Fault_plan.mark_dead t.fault switch;
      let caps' = Array.copy caps in
      caps'.(switch) <- 0;
      let affected =
        List.filter
          (fun i -> List.exists (fun p -> not (path_alive t p)) (cur_paths t i))
          (Instance.ingresses (inst t))
      in
      replan t affected ~capacities:caps'
    end
  | Event.Link_fail { u; v } ->
    let key = link_key u v in
    if not (List.mem key (Topo.Net.edges n)) then Error "unknown link"
    else if List.mem key t.dead_links then Error "link already dead"
    else begin
      t.dead_links <- key :: t.dead_links;
      let affected =
        List.filter
          (fun i -> List.exists (fun p -> not (path_alive t p)) (cur_paths t i))
          (Instance.ingresses (inst t))
      in
      replan t affected ~capacities:caps
    end
  | Event.Capacity_shrink { switch; capacity } ->
    if switch < 0 || switch >= Topo.Net.num_switches n then
      Error "unknown switch"
    else if capacity < 0 then Error "negative capacity"
    else if capacity >= caps.(switch) then Error "not a shrink"
    else begin
      let caps' = Array.copy caps in
      caps'.(switch) <- capacity;
      if (Solution.switch_usage t.good).(switch) <= capacity then
        Ok
          {
            strip = [];
            sub_policies = [];
            sub_paths = [];
            capacities = caps';
            unroutable = [];
            release = [];
          }
      else
        let affected =
          List.filter
            (fun i ->
              List.exists
                (fun (c : Solution.cell) -> List.mem_assoc i c.Solution.tags)
                t.good.Solution.per_switch.(switch))
            (Instance.ingresses (inst t))
        in
        replan t affected ~capacities:caps'
    end

(* ------------------------------------------------------------------ *)
(* The degradation ladder                                              *)

let with_capacities (sol : Solution.t) capacities =
  let i = sol.Solution.instance in
  if i.Instance.capacities = capacities then sol
  else
    let instance =
      Instance.make ~net:i.Instance.net ~routing:i.Instance.routing
        ~policies:i.Instance.policies ~capacities
    in
    { sol with Solution.instance }

(* The good solution with [goal.strip] torn down and the post-event
   capacities: the base every rung builds on, and the fail-closed floor
   when every rung fails. *)
let stripped_base t goal =
  let keep = List.filter (has_policy t) goal.strip in
  let base =
    if keep = [] then t.good else Incremental.remove ~base:t.good ~ingresses:keep
  in
  with_capacities base goal.capacities

let full_instance t goal =
  let inst = inst t in
  let gone i = List.mem i goal.strip in
  let policies =
    List.filter (fun (i, _) -> not (gone i)) inst.Instance.policies
    @ goal.sub_policies
  in
  let paths =
    List.filter
      (fun (p : Routing.Path.t) -> not (gone p.Routing.Path.ingress))
      (Routing.Table.paths inst.Instance.routing)
    @ goal.sub_paths
  in
  Instance.make ~net:inst.Instance.net ~routing:(Routing.Table.of_paths paths)
    ~policies ~capacities:goal.capacities

let status_name = function
  | `Optimal -> "optimal"
  | `Feasible -> "feasible"
  | `Infeasible -> "infeasible"
  | `Unknown -> "unknown"

(* Walk the solve rungs of the ladder in order; [None] means every
   enabled rung failed and the caller must fail closed.  Each rung is
   exception-proof: the runtime degrades, it does not crash. *)
let solve_target t goal ~rungs ~t0 =
  if goal.sub_policies = [] then Some (Report.Noop, "-", stripped_base t goal)
  else begin
    let deadline = t0 +. t.config.deadline_s in
    let opts = t.config.solve_options in
    let enabled r = List.mem r rungs in
    let incremental () =
      if not (enabled Report.Incremental) then None
      else
        try
          let base = stripped_base t goal in
          let mid = Float.min deadline (t0 +. (0.5 *. t.config.deadline_s)) in
          let r =
            Incremental.install ~options:opts ~deadline:mid ~base
              ~policies:goal.sub_policies ~paths:goal.sub_paths ()
          in
          Option.map
            (fun sol -> (Report.Incremental, status_name r.Incremental.status, sol))
            r.Incremental.solution
        with _ -> None
    in
    let full () =
      if not (enabled Report.Full_resolve) then None
      else
        try
          let r = Solve.run ~options:opts ~deadline (full_instance t goal) in
          Option.map
            (fun sol -> (Report.Full_resolve, status_name r.Solve.status, sol))
            r.Solve.solution
        with _ -> None
    in
    let greedy () =
      if not (enabled Report.Greedy) then None
      else
        try
          let layout =
            Layout.build ~sliced:opts.Solve.slice (full_instance t goal)
          in
          match Baseline.greedy layout with
          | Baseline.Placed sol -> Some (Report.Greedy, "greedy", sol)
          | Baseline.Stuck _ -> None
        with _ -> None
    in
    match incremental () with
    | Some a -> Some a
    | None -> ( match full () with Some a -> Some a | None -> greedy ())
  end

(* ------------------------------------------------------------------ *)
(* Quarantine bookkeeping                                              *)

let zero_packet = Ternary.Packet.make ~src:0 ~dst:0 ~sport:0 ~dport:0 ~proto:0

(* Must be called before [t.good] is stripped: the probes come from the
   ingress's (old or incoming) policy. *)
let fenced_record t goal i =
  let paths =
    cur_paths t i
    @ List.filter
        (fun (p : Routing.Path.t) -> p.Routing.Path.ingress = i)
        goal.sub_paths
  in
  let policy =
    match Instance.policy_of (inst t) i with
    | Some q -> Some q
    | None -> List.assoc_opt i goal.sub_policies
  in
  let probes =
    zero_packet
    ::
    (match policy with
    | Some q -> take 8 (Acl.Policy.witness_packets q)
    | None -> [])
  in
  { q_ingress = i; q_paths = paths; q_probes = probes }

(* Fail closed: keep the last-good tables, strip every affected ingress
   from the good solution and fence it at its attachment switch.
   Returns the newly fenced ingresses. *)
let quarantine_now t goal =
  let affected =
    sort_uniq (goal.strip @ List.map fst goal.sub_policies @ goal.unroutable)
  in
  let fresh = List.filter (fun i -> not (in_quarantine t i)) affected in
  let recs = List.map (fenced_record t goal) fresh in
  (try t.good <- stripped_base t goal with _ -> ());
  t.quarantine <- t.quarantine @ recs;
  List.iter (force_fence t) recs;
  fresh

(* Target tables for a committed transition: the solution's tables plus
   a fence per quarantined ingress.  Dead switches are unreachable
   through the install API, so their target is pinned to the live table
   (no live path traverses them); a fence that must land on a dead
   switch goes through the controller's forced-resync path instead. *)
let target_tables t sol quarantine =
  let n = net t in
  let { Tables.netsim; splits = _ } = Tables.to_netsim sol in
  let target = Array.init (Topo.Net.num_switches n) (Netsim.table netsim) in
  List.iter
    (fun q ->
      let k = Topo.Net.host_attach n q.q_ingress in
      target.(k) <- fence_entry q.q_ingress :: target.(k))
    quarantine;
  List.iter
    (fun k ->
      List.iter
        (fun q -> if Topo.Net.host_attach n q.q_ingress = k then force_fence t q)
        quarantine;
      target.(k) <- (Switch_api.tables t.api).(k))
    t.dead_switches;
  target

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)

let verify t =
  Telemetry.Trace.with_span "runtime.verify" @@ fun () ->
  try
    let sol = t.good in
    let inst = sol.Solution.instance in
    (* The declared placement: structural + semantic. *)
    let g = Prng.split t.verify_prng in
    let layout = Layout.build ~sliced:sol.Solution.sliced inst in
    let solution_ok =
      Verify.check ~random_samples:t.config.verify_samples g layout sol = []
    in
    (* The live data plane: walk witness packets of every policy along
       every path of its ingress and compare with the big-switch verdict. *)
    let ns = Netsim.make inst.Instance.net (Switch_api.snapshot t.api) in
    let live_ok =
      List.for_all
        (fun (i, q) ->
          let probes = take 16 (Acl.Policy.witness_packets q) in
          List.for_all
            (fun (p : Routing.Path.t) ->
              List.for_all
                (fun pkt ->
                  (not (Ternary.Field.matches p.Routing.Path.flow pkt))
                  ||
                  match (Acl.Policy.evaluate q pkt, Netsim.forward ns p pkt) with
                  | Acl.Rule.Permit, Netsim.Delivered -> true
                  | Acl.Rule.Drop, Netsim.Dropped _ -> true
                  | _ -> false)
                probes)
            (Routing.Table.paths_from inst.Instance.routing i))
        inst.Instance.policies
    in
    (* Fail closed: everything a quarantined ingress sends must die. *)
    let quarantine_ok =
      List.for_all
        (fun qr ->
          List.for_all
            (fun (p : Routing.Path.t) ->
              List.for_all
                (fun pkt ->
                  match Netsim.forward ns p pkt with
                  | Netsim.Dropped _ -> true
                  | Netsim.Delivered -> false)
                qr.q_probes)
            qr.q_paths)
        t.quarantine
    in
    solution_ok && live_ok && quarantine_ok
  with _ -> false

(* ------------------------------------------------------------------ *)
(* Consistent-update corpus                                            *)

(* The probe corpus the wave barriers walk: for every ingress carrying a
   policy before or after the event, its routed paths under the old and
   new placements plus a deterministic packet sample (policy witnesses
   of both sides and a few randoms from a PRNG derived fresh from the
   verify seed — never the mutable verify stream, so a crash-resumed
   event rebuilds the identical corpus). *)
let update_corpus t (sol : Solution.t) =
  let old_routing = (inst t).Instance.routing in
  let new_inst = sol.Solution.instance in
  let ingresses =
    sort_uniq
      (List.map fst (inst t).Instance.policies
      @ List.map fst new_inst.Instance.policies)
  in
  let g = Prng.create (t.config.verify_seed lxor 0x757044) in
  List.map
    (fun i ->
      let witnesses = function
        | Some q -> take 8 (Acl.Policy.witness_packets q)
        | None -> []
      in
      let olds = witnesses (Instance.policy_of (inst t) i) in
      let news = witnesses (Instance.policy_of new_inst i) in
      let randoms = List.init 4 (fun _ -> Ternary.Packet.random g) in
      {
        Update.ingress = i;
        old_paths = Routing.Table.paths_from old_routing i;
        new_paths = Routing.Table.paths_from new_inst.Instance.routing i;
        probes = (zero_packet :: olds) @ news @ randoms;
      })
    ingresses

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)

type tx_observer = {
  on_intent :
    undo:Netsim.entry list array -> redo:Netsim.entry list array -> unit;
  on_op : switch:int -> op:string -> unit;
  on_commit : unit -> unit;
  on_wave_begin : wave:int -> unit;
  on_wave_commit : wave:int -> frontier:Update.frontier -> unit;
}

let handle ?tx ?resume ?rungs t event =
  Telemetry.Trace.with_span "runtime.event" @@ fun () ->
  let rungs = Option.value rungs ~default:t.config.rungs in
  (match Telemetry.Trace.current () with
  | Some sp -> Telemetry.Trace.add_attr sp "event" (Event.describe event)
  | None -> ());
  let t0 = t.now () in
  let s = Switch_api.stats t.api in
  let a0 = s.Switch_api.attempts
  and f0 = s.Switch_api.failures
  and o0 = s.Switch_api.timeouts
  and r0 = s.Switch_api.retries
  and x0 = s.Switch_api.forced_resyncs in
  let finish ~rung ~status ~applied ~newq ~verified ~waves =
    let s = Switch_api.stats t.api in
    let newly_quarantined = sort_uniq newq in
    let wall_s = t.now () -. t0 in
    Telemetry.Metrics.incr (rung_counter rung);
    Telemetry.Metrics.observe m_event_s wall_s;
    Telemetry.Metrics.add m_quarantined (List.length newly_quarantined);
    if not verified then Telemetry.Metrics.incr m_verify_failures;
    (match Telemetry.Trace.current () with
    | Some sp -> Telemetry.Trace.add_attr sp "rung" (Report.rung_name rung)
    | None -> ());
    {
      Report.event = Event.describe event;
      rung;
      solve_status = status;
      applied;
      newly_quarantined;
      quarantined = quarantined t;
      verified;
      entries = live_entries t;
      attempts = s.Switch_api.attempts - a0;
      failures = s.Switch_api.failures - f0;
      timeouts = s.Switch_api.timeouts - o0;
      retries = s.Switch_api.retries - r0;
      forced_resyncs = s.Switch_api.forced_resyncs - x0;
      waves;
      wall_s;
    }
  in
  match Telemetry.Trace.with_span "runtime.plan" (fun () -> plan t event) with
  | Error reason ->
    finish ~rung:Report.Noop ~status:("rejected: " ^ reason)
      ~applied:Report.Kept_last_good ~newq:[] ~verified:(verify t) ~waves:0
  | Ok goal -> (
    match
      Telemetry.Trace.with_span "runtime.ladder" (fun () ->
          solve_target t goal ~rungs ~t0)
    with
    | None ->
      (* Every solve rung failed: fail closed. *)
      let newq = quarantine_now t goal in
      finish ~rung:Report.Quarantine ~status:"exhausted"
        ~applied:Report.Kept_last_good ~newq ~verified:(verify t) ~waves:0
    | Some (rung, status, sol) ->
      let placed = List.map fst goal.sub_policies in
      let keep_q =
        List.filter
          (fun q ->
            not
              (List.mem q.q_ingress placed || List.mem q.q_ingress goal.release))
          t.quarantine
      in
      let fresh =
        List.filter (fun i -> not (in_quarantine t i)) goal.unroutable
      in
      let q' = keep_q @ List.map (fenced_record t goal) fresh in
      (* An event whose only effect is fencing is a quarantine
         transition, whatever trivial rung "solved" it. *)
      let rung =
        if goal.sub_policies = [] && goal.unroutable <> [] then Report.Quarantine
        else rung
      in
      let target = target_tables t sol q' in
      (match tx with
      | Some o ->
        o.on_intent ~undo:(Switch_api.snapshot t.api) ~redo:target
      | None -> ());
      let observe =
        Option.map (fun o ~switch ~op -> o.on_op ~switch ~op) tx
      in
      let commit_good () =
        (match tx with Some o -> o.on_commit () | None -> ());
        t.good <- sol;
        t.quarantine <- q'
      in
      let newq_committed () =
        List.map
          (fun q -> q.q_ingress)
          (List.filter (fun q -> List.mem q.q_ingress fresh) q')
      in
      let legacy ~fallback =
        match
          Telemetry.Trace.with_span "runtime.tx" (fun () ->
              Transaction.apply ?observe ~api:t.api target)
        with
        | Transaction.Committed ->
          commit_good ();
          finish ~rung ~status
            ~applied:
              (if fallback then Report.Committed_fallback else Report.Committed)
            ~newq:(newq_committed ()) ~verified:(verify t) ~waves:0
        | Transaction.Rolled_back { switch; op } ->
          (* Tables are byte-identical to the pre-event state; fail closed
             on everything the event touched. *)
          Telemetry.Metrics.incr m_rollbacks;
          let newq = quarantine_now t goal in
          finish ~rung ~status
            ~applied:(Report.Rolled_back (Printf.sprintf "%s@%d" op switch))
            ~newq ~verified:(verify t) ~waves:0
      in
      match t.config.update_mode with
      | Legacy -> legacy ~fallback:false
      | Consistent -> (
        (* Preferred rung of the write ladder: the per-packet-consistent
           wave schedule.  A planner failure or an aborted execution
           leaves the pre-event tables in place and degrades explicitly
           to the legacy single-transaction path. *)
        let planned =
          try
            Some
              (Update.build
                 ~attach:(Topo.Net.host_attach (net t))
                 ~corpus:(update_corpus t sol)
                 ~old_tables:(Switch_api.tables t.api) ~target)
          with _ -> None
        in
        match planned with
        | None -> legacy ~fallback:true
        | Some uplan -> (
          let observer =
            Option.map
              (fun o ->
                {
                  Update.on_wave_begin = (fun ~wave -> o.on_wave_begin ~wave);
                  on_wave_commit =
                    (fun ~wave ~frontier -> o.on_wave_commit ~wave ~frontier);
                })
              tx
          in
          let result =
            Telemetry.Trace.with_span "runtime.update" (fun () ->
                Update.execute ~wave_retries:t.config.update_wave_retries
                  ?observer ?on_op:observe ?resume ~api:t.api ~fault:t.fault
                  uplan)
          in
          match result.Update.outcome with
          | Update.Committed ->
            commit_good ();
            finish ~rung ~status ~applied:Report.Committed
              ~newq:(newq_committed ()) ~verified:(verify t)
              ~waves:result.Update.waves_committed
          | Update.Aborted _ -> legacy ~fallback:true)))

let run ?tx t events = List.map (handle ?tx t) events

type outcome = Committed | Rolled_back of { switch : int; op : string }

(* Multiset difference [a \ b] preserving the order of [a]. *)
let diff a b =
  List.fold_left
    (fun (kept, rest) e ->
      let rec drop = function
        | [] -> None
        | x :: xs when x = e -> Some xs
        | x :: xs -> Option.map (fun r -> x :: r) (drop xs)
      in
      match drop rest with
      | Some rest' -> (kept, rest')
      | None -> (e :: kept, rest))
    ([], b) a
  |> fun (kept, _) -> List.rev kept

let same_contents a b = diff a b = [] && diff b a = []

let restore ~api (tables : Netsim.entry list array) =
  let live = Switch_api.tables api in
  if Array.length tables <> Array.length live then
    invalid_arg "Transaction.restore: switch count mismatch";
  Array.iteri
    (fun k table ->
      if live.(k) <> table then Switch_api.force_set api ~switch:k table)
    tables

let apply ?observe ~api (target : Netsim.entry list array) =
  let live = Switch_api.tables api in
  if Array.length target <> Array.length live then
    invalid_arg "Transaction.apply: switch count mismatch";
  let touched =
    List.filter
      (fun k -> live.(k) <> target.(k))
      (List.init (Array.length live) Fun.id)
  in
  let saved = List.map (fun k -> (k, live.(k))) touched in
  let adds =
    List.concat_map
      (fun k -> List.map (fun e -> (k, e)) (diff target.(k) live.(k)))
      touched
  in
  let dels =
    List.concat_map
      (fun k -> List.map (fun e -> (k, e)) (diff live.(k) target.(k)))
      touched
  in
  let installed = ref [] and deleted = ref [] in
  let rollback () =
    (* Compensate through the same faulty API (in compensation mode, so
       the aborted ops' backoff is not double-counted in the forward
       histogram) — then force-resync any switch still off its snapshot,
       so rollback itself cannot leave the data plane torn. *)
    Switch_api.compensating api (fun () ->
        List.iter
          (fun (k, e) -> ignore (Switch_api.delete api ~switch:k e))
          !installed;
        List.iter
          (fun (k, e) -> ignore (Switch_api.install api ~switch:k e))
          !deleted);
    List.iter
      (fun (k, table) ->
        if live.(k) <> table then Switch_api.force_set api ~switch:k table)
      saved
  in
  let phase op acted ops =
    List.for_all
      (fun (k, e) ->
        (match observe with
        | Some f ->
          f ~switch:k ~op:(match op with `Install -> "install" | `Delete -> "delete")
        | None -> ());
        let ok =
          match op with
          | `Install -> Switch_api.install api ~switch:k e
          | `Delete -> Switch_api.delete api ~switch:k e
        in
        if ok then acted := (k, e) :: !acted;
        ok)
      ops
  in
  let fail_of ops acted =
    (* The op that broke the phase is the first one not acted on. *)
    match List.nth_opt ops (List.length !acted) with
    | Some (k, _) -> k
    | None -> -1
  in
  if not (phase `Install installed adds) then begin
    let switch = fail_of adds installed in
    rollback ();
    Rolled_back { switch; op = "install" }
  end
  else if not (phase `Delete deleted dels) then begin
    let switch = fail_of dels deleted in
    rollback ();
    Rolled_back { switch; op = "delete" }
  end
  else begin
    (* Commit: contents are in place; write the target order. *)
    List.iter
      (fun k ->
        assert (same_contents live.(k) target.(k));
        live.(k) <- target.(k))
      touched;
    Committed
  end

(** Seeded fault injection for the switch-install API.

    A fault plan decides, per table operation, whether the switch
    acknowledges ([Ok]), rejects ([Fail] — e.g. a TCAM write error) or
    never answers ([Timeout]).  Draws come from a private {!Prng}
    stream, so a given seed produces the same fault sequence for the
    same operation sequence — chaos runs are exactly replayable, which
    is what makes the runtime's failure handling testable at all.

    Switches marked {e dead} (lost to a [Switch_fail] event) reject
    every operation unconditionally, on top of the probabilistic
    faults. *)

type outcome = Ok | Fail | Timeout

type t

val none : t
(** No injected faults, nothing ever dead: every operation succeeds.
    Shared and immutable — {!mark_dead} and {!fail_next} raise
    [Invalid_argument] on it (a mutation would silently poison every
    later user of the shared value). *)

val faultless : unit -> t
(** A fresh plan with no probabilistic faults: like {!none}, but owned
    by the caller, so it can accumulate dead switches and forced fails.
    What {!Engine.create} defaults to when no fault plan is given. *)

val make : ?fail_rate:float -> ?timeout_rate:float -> seed:int -> unit -> t
(** [fail_rate] (default 0.0) and [timeout_rate] (default 0.0) are
    per-operation probabilities; their sum must be <= 1.0 (raises
    [Invalid_argument] otherwise). *)

val fail_next : t -> int -> unit
(** [fail_next plan n] forces the next [n] draws to [Fail] regardless of
    rates — the deterministic knob tests use to hit a specific phase of
    a transaction. *)

val mark_dead : t -> int -> unit
(** Every subsequent operation on this switch fails. *)

val is_dead : t -> int -> bool

val draw : t -> switch:int -> outcome
(** Consume one draw for an operation on [switch]. *)

val jitter : t -> float
(** Uniform in \[0.5, 1.5), from the same seeded stream — the backoff
    jitter factor, kept here so retry schedules replay with the plan. *)

type state
(** A point-in-time copy of the plan's mutable state (PRNG position,
    pending forced fails, dead set).  Plain data, safe to [Marshal] —
    consistent-update wave frontiers persist one per committed wave so a
    crash-recovered run can resume mid-update with the exact remaining
    fault sequence. *)

val capture : t -> state

val restore : t -> state -> unit
(** Rewind the plan to a captured state; subsequent draws replay the
    stream from that point. *)

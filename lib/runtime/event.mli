(** Network events the reconciliation loop absorbs.

    Each constructor is one of the dynamic changes the paper's
    Section IV-E incremental formulation exists for (tenant churn,
    policy edits, routing changes) plus the infrastructure faults a
    running controller must survive (switch/link loss, TCAM capacity
    shrink).  Events carry everything the runtime needs to recompute a
    consistent placement; they never mutate anything themselves. *)

type t =
  | Install of {
      ingress : int;
      policy : Acl.Policy.t;
      paths : Routing.Path.t list;
    }  (** tenant arrival: a new ingress policy with its routed paths *)
  | Reroute of { ingresses : int list; paths : Routing.Path.t list }
      (** the routing module moved these ingresses onto new paths *)
  | Update_policy of { ingress : int; policy : Acl.Policy.t }
      (** rule addition/removal/modification at one ingress *)
  | Remove of { ingresses : int list }  (** tenant departure *)
  | Switch_fail of { switch : int }
      (** the switch is lost: its TCAM is gone and no path may cross it *)
  | Link_fail of { u : int; v : int }
      (** the link is lost: paths over it must be re-routed *)
  | Capacity_shrink of { switch : int; capacity : int }
      (** the switch's ACL TCAM budget drops (e.g. other tables grew) *)

val describe : t -> string
(** Deterministic one-line label (no timestamps, no addresses) used in
    transition reports and replay logs. *)

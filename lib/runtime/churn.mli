(** Seeded churn: a generator of plausible network events against a live
    {!Engine}.

    Each {!next} call inspects the engine's current state (active
    tenants, free hosts, dead infrastructure) and draws one event from a
    weighted mix — tenant arrivals with ClassBench-style policies and
    random shortest paths, re-routes, policy updates, departures,
    capacity shrinks and switch/link failures.  All draws come from one
    seeded {!Prng} stream, so a (seed, weights, engine) triple replays
    the same event sequence — the chaos benchmark and the determinism
    tests both rely on this.

    Generated events are {e plausible}, not guaranteed valid: the stream
    may occasionally ask for something the engine rejects (e.g. a link
    that just died); rejection reports are part of normal operation. *)

type weights = {
  install : int;
  reroute : int;
  update_policy : int;
  remove : int;
  capacity_shrink : int;
  switch_fail : int;
  link_fail : int;
}

val default_weights : weights
(** Arrival-heavy with a steady trickle of failures. *)

type t

val make : ?weights:weights -> ?rules:int -> seed:int -> unit -> t
(** [rules] is the per-policy rule count for generated tenants
    (default 6). *)

val capture : t -> string
(** The generator's full state (PRNG position included) as an opaque
    byte string — journaled runs log it alongside each event so a
    resumed run continues the {e same} stream. *)

val restore : string -> t
(** Inverse of {!capture}.  Only feed it strings produced by {!capture}
    (the crash-safe journal checksums them in transit); anything else is
    undefined behaviour, as with [Marshal]. *)

val next : t -> Engine.t -> Event.t
(** One event drawn against the engine's current state.  Falls back
    across categories when a draw is impossible (e.g. no active tenant
    to remove); always returns an event as long as the network has at
    least one host. *)

val drive : t -> Engine.t -> int -> Report.t list
(** Generate-and-handle [n] events in sequence; the reports come back in
    event order. *)

type outcome = Ok | Fail | Timeout

type t = {
  prng : Prng.t option;  (* None = faultless plan, no draws consumed *)
  fail_rate : float;
  timeout_rate : float;
  mutable forced_fails : int;
  mutable dead : int list;
}

let faultless () =
  { prng = None; fail_rate = 0.0; timeout_rate = 0.0; forced_fails = 0; dead = [] }

(* [none] is shared across the whole process, so it must stay pristine:
   a caller that needs a faultless plan it can mutate (mark switches
   dead, force fails) owns a [faultless ()] instead. *)
let none = faultless ()

let make ?(fail_rate = 0.0) ?(timeout_rate = 0.0) ~seed () =
  if fail_rate < 0.0 || timeout_rate < 0.0 || fail_rate +. timeout_rate > 1.0
  then invalid_arg "Fault_plan.make: rates must be >= 0 and sum to <= 1";
  {
    prng = Some (Prng.create seed);
    fail_rate;
    timeout_rate;
    forced_fails = 0;
    dead = [];
  }

let fail_next t n =
  if t == none then invalid_arg "Fault_plan.none is immutable";
  t.forced_fails <- t.forced_fails + n

let mark_dead t k =
  if t == none then invalid_arg "Fault_plan.none is immutable";
  if not (List.mem k t.dead) then t.dead <- k :: t.dead

let is_dead t k = List.mem k t.dead

let draw t ~switch =
  if is_dead t switch then Fail
  else if t.forced_fails > 0 then begin
    t.forced_fails <- t.forced_fails - 1;
    Fail
  end
  else
    match t.prng with
    | None -> Ok
    | Some g ->
      let u = Prng.float g 1.0 in
      if u < t.fail_rate then Fail
      else if u < t.fail_rate +. t.timeout_rate then Timeout
      else Ok

let jitter t =
  match t.prng with None -> 1.0 | Some g -> 0.5 +. Prng.float g 1.0

type state = {
  s_prng : Prng.t option;
  s_forced_fails : int;
  s_dead : int list;
}

let capture t =
  {
    s_prng = Option.map Prng.copy t.prng;
    s_forced_fails = t.forced_fails;
    s_dead = t.dead;
  }

let restore t s =
  if t == none then () (* its own captured state, nothing to rewind *)
  else begin
    (match (t.prng, s.s_prng) with
    | Some g, Some saved -> Prng.assign g saved
    | _ -> ());
    t.forced_fails <- s.s_forced_fails;
    t.dead <- s.s_dead
  end

(* Per-packet-consistent update scheduling: two-phase tag-and-match
   waves with bounded retry, wave-level rollback and crash-resumable
   frontiers.  See update.mli for the full protocol description. *)

type ingress_paths = {
  ingress : int;
  old_paths : Routing.Path.t list;
  new_paths : Routing.Path.t list;
  probes : Ternary.Packet.t list;
}

type op =
  | Install of { switch : int; entry : Netsim.entry }
  | Delete of { switch : int; entry : Netsim.entry }

type wave = {
  label : string;
  ops : op list;
  reorders : (int * Netsim.entry list) list;
}

type plan = {
  waves : wave array;
  flip_wave : int;
  unflip_wave : int;
  affected : int list;
  corpus : ingress_paths list;
  old_tables : Netsim.entry list array;
  target : Netsim.entry list array;
  shadow_headroom : int array;
  base_occupancy : int array;
  peak_occupancy : int array;
}

type frontier = {
  f_wave : int;
  f_tables : Netsim.entry list array;
  f_fault : Fault_plan.state;
  f_stats : Switch_api.stats;
}

type observer = {
  on_wave_begin : wave:int -> unit;
  on_wave_commit : wave:int -> frontier:frontier -> unit;
}

type outcome = Committed | Aborted of { switch : int; op : string }

type result = {
  outcome : outcome;
  waves_committed : int;
  wave_rollbacks : int;
  violations : int;
}

let m_waves =
  Telemetry.Metrics.counter ~help:"consistent-update waves committed"
    "sdnplace_update_waves_total"

let m_wave_rollbacks =
  Telemetry.Metrics.counter
    ~help:"waves rolled back to their frontier after an operation failure"
    "sdnplace_update_wave_rollbacks_total"

let m_wave_s =
  Telemetry.Metrics.histogram ~help:"wall-clock latency of one update wave"
    ~buckets:[| 0.0001; 0.001; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 |]
    "sdnplace_update_wave_seconds"

(* Process-wide violation tally, deliberately independent of the
   telemetry registry: chaos benches report it machine-readably even
   when telemetry is off, and a consistency violation must never be
   maskable by a monitoring switch. *)
let violations_seen = ref 0

let violations_total () = !violations_seen

(* Multiset difference [a \ b] preserving the order of [a] (the same
   notion Transaction uses for its add/delete sets). *)
let mdiff a b =
  List.fold_left
    (fun (kept, rest) e ->
      let rec drop = function
        | [] -> None
        | x :: xs when x = e -> Some xs
        | x :: xs -> Option.map (fun r -> x :: r) (drop xs)
      in
      match drop rest with
      | Some rest' -> (kept, rest')
      | None -> (e :: kept, rest))
    ([], b) a
  |> fun (kept, _) -> List.rev kept

let same_contents a b = mdiff a b = [] && mdiff b a = []

let remove_first entry table =
  let rec go = function
    | [] -> None
    | e :: rest when e = entry -> Some rest
    | e :: rest -> Option.map (fun r -> e :: r) (go rest)
  in
  go table

module IS = Set.Make (Int)

let build ~attach ~corpus ~old_tables ~target =
  let n = Array.length old_tables in
  if Array.length target <> n then
    invalid_arg "Update.build: switch count mismatch";
  (* Detach the snapshots from the live array: the plan must keep the
     pre-update view even while execution mutates the data plane. *)
  let old_tables = Array.copy old_tables in
  let target = Array.copy target in
  let proj i table =
    List.filter (fun (e : Netsim.entry) -> List.mem i e.Netsim.tags) table
  in
  let tags_of tables =
    Array.fold_left
      (fun acc tbl ->
        List.fold_left
          (fun acc (e : Netsim.entry) ->
            List.fold_left (fun acc t -> IS.add t acc) acc e.Netsim.tags)
          acc tbl)
      IS.empty tables
  in
  let universe =
    IS.filter
      (fun i -> not (Netsim.is_version_tag i || Netsim.is_stamp_tag i))
      (IS.union (tags_of old_tables) (tags_of target))
  in
  (* Affected ingresses: any whose per-switch projection changes, plus
     any whose routed paths change.  Everything in the add/delete
     multisets carries only affected tags — a count change in any
     entry's tag is a projection change for that tag — so unaffected
     ingresses' match sequences are untouched by every wave below. *)
  let affected_tables =
    IS.filter
      (fun i ->
        let differs = ref false in
        for k = 0 to n - 1 do
          if (not !differs) && proj i old_tables.(k) <> proj i target.(k) then
            differs := true
        done;
        !differs)
      universe
  in
  let affected_set =
    List.fold_left
      (fun acc ip ->
        if ip.old_paths <> ip.new_paths then IS.add ip.ingress acc else acc)
      affected_tables corpus
  in
  let affected = IS.elements affected_set in
  let is_affected i = IS.mem i affected_set in
  (* Shadow installs go only to switches on the *new* paths of affected
     ingresses (new paths never traverse dead switches, so a consistent
     update never wastes retries on guaranteed-failing installs).  The
     depth of a switch is its deepest position across those paths;
     shadows are installed deepest-first so each wave only ever extends
     coverage downstream of what is already in place. *)
  let depth = Hashtbl.create 16 in
  List.iter
    (fun ip ->
      if is_affected ip.ingress then
        List.iter
          (fun (p : Routing.Path.t) ->
            Array.iteri
              (fun pos k ->
                let d = pos + 1 in
                match Hashtbl.find_opt depth k with
                | Some d' when d' >= d -> ()
                | _ -> Hashtbl.replace depth k d)
              p.Routing.Path.switches)
          ip.new_paths)
    corpus;
  let shadow_switches =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) depth [])
  in
  (* The shadow copy of a new-placement entry keeps the target's match
     order and is keyed on the version-tagged aliases of its affected
     tags: a flipped packet walking with [vtag i] sees exactly the
     target's projection for [i], and nothing else ever matches it. *)
  let shadow_at k =
    List.filter_map
      (fun (e : Netsim.entry) ->
        let atags = List.filter is_affected e.Netsim.tags in
        if atags = [] then None
        else Some { Netsim.tags = List.map Netsim.vtag atags; rule = e.rule })
      target.(k)
  in
  let depths =
    List.sort_uniq
      (fun a b -> compare b a)
      (List.map (fun k -> Hashtbl.find depth k) shadow_switches)
  in
  let shadow_waves =
    List.filter_map
      (fun d ->
        let ops =
          List.concat_map
            (fun k ->
              if Hashtbl.find depth k = d then
                List.map (fun e -> Install { switch = k; entry = e }) (shadow_at k)
              else [])
            shadow_switches
        in
        if ops = [] then None
        else
          Some { label = Printf.sprintf "shadow-depth-%d" d; ops; reorders = [] })
      depths
  in
  (* Flipping an ingress is marked in the data plane by a stamp entry at
     its attachment point (first switch of a new path when it has one —
     new paths avoid dead switches — the attachment switch otherwise).
     Every affected ingress flips, including ones losing their paths
     entirely: their old entries are about to be GC'd, so leaving them
     on old stamping would change what their packets see mid-update. *)
  let stamp_entry i =
    {
      Netsim.tags = [ Netsim.stamp_tag i ];
      rule =
        Acl.Rule.make ~field:Ternary.Field.any ~action:Acl.Rule.Permit
          ~priority:0;
    }
  in
  let stamp_switch i =
    match List.find_opt (fun ip -> ip.ingress = i) corpus with
    | Some { new_paths = p :: _; _ } when Array.length p.Routing.Path.switches > 0
      ->
      p.Routing.Path.switches.(0)
    | _ -> attach i
  in
  let flip_ops =
    List.map
      (fun i -> Install { switch = stamp_switch i; entry = stamp_entry i })
      affected
  in
  let gc_old_ops =
    List.concat_map
      (fun k ->
        List.map
          (fun e -> Delete { switch = k; entry = e })
          (mdiff old_tables.(k) target.(k)))
      (List.init n Fun.id)
  in
  let install_new_ops =
    List.concat_map
      (fun k ->
        List.map
          (fun e -> Install { switch = k; entry = e })
          (mdiff target.(k) old_tables.(k)))
      (List.init n Fun.id)
  in
  (* Plan-time simulation: replay every operation over a copy of the old
     tables to (a) derive the renormalisation rewrites, (b) track the
     per-switch transient peak, and (c) prove the final state is exactly
     the target before a single live operation is issued. *)
  let sim = Array.map Fun.id old_tables in
  let peak = Array.map List.length old_tables in
  let base =
    Array.init n (fun k ->
        max (List.length old_tables.(k)) (List.length target.(k)))
  in
  let note k =
    let len = List.length sim.(k) in
    if len > peak.(k) then peak.(k) <- len
  in
  let sim_op = function
    | Install { switch; entry } ->
      sim.(switch) <- sim.(switch) @ [ entry ];
      note switch
    | Delete { switch; entry } -> (
      match remove_first entry sim.(switch) with
      | Some t -> sim.(switch) <- t
      | None -> ())
  in
  List.iter sim_op (List.concat_map (fun w -> w.ops) shadow_waves);
  List.iter sim_op flip_ops;
  List.iter sim_op gc_old_ops;
  List.iter sim_op install_new_ops;
  (* Renormalisation: once the new plain entries are in, rewrite each
     touched switch to target-order plain entries followed by its
     shadows and stamps.  A pure priority reorder (content-preserving,
     no fault draws) — but it must land *before* the unflip, or an
     ingress whose update is a pure reorder would unflip onto the old
     order. *)
  let classify (e : Netsim.entry) =
    if List.exists Netsim.is_stamp_tag e.Netsim.tags then `Stamp
    else if List.exists Netsim.is_version_tag e.Netsim.tags then `Shadow
    else `Plain
  in
  let reorders =
    List.filter_map
      (fun k ->
        let shadows = List.filter (fun e -> classify e = `Shadow) sim.(k) in
        let stamps = List.filter (fun e -> classify e = `Stamp) sim.(k) in
        let want = target.(k) @ shadows @ stamps in
        if sim.(k) = want then None
        else begin
          let plain = List.filter (fun e -> classify e = `Plain) sim.(k) in
          if not (same_contents plain target.(k)) then
            invalid_arg "Update.build: renormalisation would change contents";
          Some (k, want)
        end)
      (List.init n Fun.id)
  in
  List.iter (fun (k, table) -> sim.(k) <- table) reorders;
  let unflip_ops =
    List.map
      (fun i -> Delete { switch = stamp_switch i; entry = stamp_entry i })
      affected
  in
  let gc_shadow_ops =
    List.concat_map
      (fun k ->
        List.map (fun e -> Delete { switch = k; entry = e }) (shadow_at k))
      shadow_switches
  in
  List.iter sim_op unflip_ops;
  List.iter sim_op gc_shadow_ops;
  Array.iteri
    (fun k tbl ->
      if tbl <> target.(k) then
        invalid_arg "Update.build: simulated final state differs from target")
    sim;
  let headroom = Array.make n 0 in
  List.iter (fun k -> headroom.(k) <- List.length (shadow_at k)) shadow_switches;
  List.iter
    (fun i ->
      let k = stamp_switch i in
      headroom.(k) <- headroom.(k) + 1)
    affected;
  let waves_rev = ref [] in
  let idx = ref 0 in
  let flip_idx = ref (-1) in
  let unflip_idx = ref (-1) in
  let push ?(mark = `None) label ops reorders =
    if ops <> [] || reorders <> [] then begin
      waves_rev := { label; ops; reorders } :: !waves_rev;
      (match mark with
      | `Flip -> flip_idx := !idx
      | `Unflip -> unflip_idx := !idx
      | `None -> ());
      incr idx
    end
  in
  List.iter (fun w -> push w.label w.ops w.reorders) shadow_waves;
  push ~mark:`Flip "flip" flip_ops [];
  push "gc-old" gc_old_ops [];
  push "install-new" install_new_ops reorders;
  push ~mark:`Unflip "unflip" unflip_ops [];
  push "gc-shadow" gc_shadow_ops [];
  {
    waves = Array.of_list (List.rev !waves_rev);
    flip_wave = !flip_idx;
    unflip_wave = !unflip_idx;
    affected;
    corpus;
    old_tables;
    target;
    shadow_headroom = headroom;
    base_occupancy = base;
    peak_occupancy = peak;
  }

(* Barrier check: with [committed] waves in, every probe of every
   ingress must see entirely-old or entirely-new policy.  Unaffected
   ingresses and affected ones before their flip walk the live tables
   with their plain tag and must reproduce the old placement's verdict;
   between flip and unflip an affected ingress walks its new paths with
   the version tag and must reproduce the target's; after unflip, the
   plain tag over the new paths must already be the target's. *)
let inconsistencies plan ~live ~committed =
  let flip_done = plan.flip_wave >= 0 && committed > plan.flip_wave in
  let unflip_done = plan.unflip_wave >= 0 && committed > plan.unflip_wave in
  let bad = ref 0 in
  List.iter
    (fun ip ->
      let i = ip.ingress in
      let check paths ~walk_tag ~reference =
        List.iter
          (fun p ->
            List.iter
              (fun pkt ->
                let got = Netsim.forward_tables live p ~tag:walk_tag pkt in
                let want = Netsim.forward_tables reference p ~tag:i pkt in
                if got <> want then incr bad)
              ip.probes)
          paths
      in
      if not (List.mem i plan.affected) then
        check ip.old_paths ~walk_tag:i ~reference:plan.old_tables
      else if not flip_done then
        check ip.old_paths ~walk_tag:i ~reference:plan.old_tables
      else if not unflip_done then
        check ip.new_paths ~walk_tag:(Netsim.vtag i) ~reference:plan.target
      else check ip.new_paths ~walk_tag:i ~reference:plan.target)
    plan.corpus;
  !bad

let execute ?(wave_retries = 1) ?observer ?on_op ?resume ~api ~fault plan =
  let live = Switch_api.tables api in
  if Array.length live <> Array.length plan.target then
    invalid_arg "Update.execute: switch count mismatch";
  (* The undo point is the pre-update state: captured before a resumed
     run overwrites the tables with its frontier, because recovery hands
     us the data plane already resynced to that same pre-update state. *)
  let undo = Switch_api.snapshot api in
  let start_wave =
    match resume with
    | None -> 0
    | Some f ->
      Array.iteri (fun k table -> live.(k) <- table) f.f_tables;
      Fault_plan.restore fault f.f_fault;
      Switch_api.restore_stats api f.f_stats;
      f.f_wave + 1
  in
  let n = Array.length plan.waves in
  let rollbacks = ref 0 in
  let bad_total = ref 0 in
  let w = ref start_wave in
  let restore_undo () =
    Array.iteri
      (fun k table ->
        if live.(k) <> table then Switch_api.force_set api ~switch:k table)
      undo
  in
  let finish outcome =
    {
      outcome;
      waves_committed = !w;
      wave_rollbacks = !rollbacks;
      violations = !bad_total;
    }
  in
  let barrier ~committed =
    let bad = inconsistencies plan ~live ~committed in
    if bad > 0 then begin
      bad_total := !bad_total + bad;
      violations_seen := !violations_seen + bad
    end;
    bad = 0
  in
  let verify_failed () =
    restore_undo ();
    finish (Aborted { switch = -1; op = "verify" })
  in
  (* A resumed run re-proves the restored frontier's consistency before
     issuing any further operation. *)
  if resume <> None && not (barrier ~committed:start_wave) then verify_failed ()
  else begin
    let aborted = ref None in
    while !aborted = None && !w < n do
      let wave = plan.waves.(!w) in
      (match observer with Some o -> o.on_wave_begin ~wave:!w | None -> ());
      let t0 = Telemetry.Clock.now () in
      let snap = Switch_api.snapshot api in
      let apply_op op =
        let switch, name =
          match op with
          | Install { switch; _ } -> (switch, "install")
          | Delete { switch; _ } -> (switch, "delete")
        in
        (match on_op with Some f -> f ~switch ~op:name | None -> ());
        match op with
        | Install { switch; entry } -> Switch_api.install api ~switch entry
        | Delete { switch; entry } -> Switch_api.delete api ~switch entry
      in
      let rec attempt tries =
        let done_ops = ref [] in
        let rec run = function
          | [] -> None
          | op :: rest ->
            if apply_op op then begin
              done_ops := op :: !done_ops;
              run rest
            end
            else Some op
        in
        match run wave.ops with
        | None -> `Committed
        | Some failed ->
          incr rollbacks;
          Telemetry.Metrics.incr m_wave_rollbacks;
          (* Wave rollback: compensate the wave's applied operations in
             reverse through the faulty API, then force-resync whatever
             is still off the wave's entry snapshot — the data plane is
             back on the last consistent frontier either way. *)
          Switch_api.compensating api (fun () ->
              List.iter
                (fun op ->
                  match op with
                  | Install { switch; entry } ->
                    ignore (Switch_api.delete api ~switch entry)
                  | Delete { switch; entry } ->
                    ignore (Switch_api.install api ~switch entry))
                !done_ops);
          Array.iteri
            (fun k table ->
              if live.(k) <> table then Switch_api.force_set api ~switch:k table)
            snap;
          if tries < wave_retries then attempt (tries + 1)
          else
            let switch, op =
              match failed with
              | Install { switch; _ } -> (switch, "install")
              | Delete { switch; _ } -> (switch, "delete")
            in
            `Failed (switch, op)
      in
      match attempt 0 with
      | `Failed (switch, op) ->
        restore_undo ();
        aborted := Some (finish (Aborted { switch; op }))
      | `Committed ->
        (* Renormalisation rides the wave's commit: a direct controller
           priority rewrite, content-preserving by construction. *)
        List.iter
          (fun (k, table) ->
            assert (same_contents live.(k) table);
            live.(k) <- table)
          wave.reorders;
        if not (barrier ~committed:(!w + 1)) then
          aborted := Some (verify_failed ())
        else begin
          let frontier =
            {
              f_wave = !w;
              f_tables = Switch_api.snapshot api;
              f_fault = Fault_plan.capture fault;
              f_stats = Switch_api.copy_stats (Switch_api.stats api);
            }
          in
          Telemetry.Metrics.incr m_waves;
          Telemetry.Metrics.observe m_wave_s (Telemetry.Clock.now () -. t0);
          (match observer with
          | Some o -> o.on_wave_commit ~wave:!w ~frontier
          | None -> ());
          incr w
        end
    done;
    match !aborted with
    | Some r -> r
    | None ->
      (* Defensive final write, mirroring Transaction's commit: contents
         are already in place, fix any residual order drift. *)
      Array.iteri
        (fun k table ->
          if live.(k) <> table then begin
            assert (same_contents live.(k) table);
            live.(k) <- table
          end)
        plan.target;
      finish Committed
  end

type weights = {
  install : int;
  reroute : int;
  update_policy : int;
  remove : int;
  capacity_shrink : int;
  switch_fail : int;
  link_fail : int;
}

let default_weights =
  {
    install = 6;
    reroute = 3;
    update_policy = 3;
    remove = 2;
    capacity_shrink = 2;
    switch_fail = 1;
    link_fail = 2;
  }

type t = {
  prng : Prng.t;
  weights : weights;
  rules : int;
  mutable killed_links : (int * int) list;
}

let make ?(weights = default_weights) ?(rules = 6) ~seed () =
  { prng = Prng.create seed; weights; rules; killed_links = [] }

let capture t = Marshal.to_string t []

let restore s = (Marshal.from_string s 0 : t)

let path_to t net ~ingress ~egress =
  let src = Topo.Net.host_attach net ingress in
  let dst = Topo.Net.host_attach net egress in
  match Routing.Shortest.random_shortest_path t.prng net ~src ~dst with
  | Some switches -> Some (Routing.Path.make ~ingress ~egress ~switches ())
  | None -> None

let next t eng =
  let inst = (Engine.good eng).Placement.Solution.instance in
  let net = inst.Placement.Instance.net in
  let caps = inst.Placement.Instance.capacities in
  let usage = Placement.Solution.switch_usage (Engine.good eng) in
  let num_hosts = Topo.Net.num_hosts net in
  let num_switches = Topo.Net.num_switches net in
  let dead = Engine.dead_switches eng in
  let active = Placement.Instance.ingresses inst in
  let fenced = Engine.quarantined eng in
  let attach_alive h = not (List.mem (Topo.Net.host_attach net h) dead) in
  let hosts = List.init num_hosts Fun.id in
  let free =
    List.filter
      (fun h ->
        attach_alive h && (not (List.mem h active)) && not (List.mem h fenced))
      hosts
  in
  let egress_pool i = List.filter (fun h -> h <> i && attach_alive h) hosts in
  let tenants = List.sort_uniq compare (active @ fenced) in
  let alive_switches =
    List.filter (fun k -> not (List.mem k dead)) (List.init num_switches Fun.id)
  in
  let alive_edges =
    List.filter
      (fun (a, b) ->
        (not (List.mem a dead))
        && (not (List.mem b dead))
        && not (List.mem (a, b) t.killed_links))
      (Topo.Net.edges net)
  in
  let fresh_paths i =
    let pool = egress_pool i in
    if pool = [] then []
    else
      let n = 1 + Prng.int t.prng 2 in
      List.filter_map
        (fun _ -> path_to t net ~ingress:i ~egress:(Prng.choose_list t.prng pool))
        (List.init n Fun.id)
  in
  let fresh_policy i paths =
    let egresses =
      List.sort_uniq compare
        (List.map (fun (p : Routing.Path.t) -> p.Routing.Path.egress) paths)
    in
    let egresses = if egresses = [] then egress_pool i else egresses in
    let num_rules = max 1 (t.rules + Prng.int_in t.prng (-2) 2) in
    Classbench.policy_for_ingress t.prng ~net ~egresses ~num_rules
  in
  (* Each category: (weight, available?, build).  Builders may still
     come up empty (no shortest path, say); we fall through in weighted
     order until one produces. *)
  let categories =
    [
      ( t.weights.install,
        free <> [],
        fun () ->
          let i = Prng.choose_list t.prng free in
          match fresh_paths i with
          | [] -> None
          | paths ->
            Some (Event.Install { ingress = i; policy = fresh_policy i paths; paths })
      );
      ( t.weights.reroute,
        active <> [],
        fun () ->
          let i = Prng.choose_list t.prng active in
          match fresh_paths i with
          | [] -> None
          | paths -> Some (Event.Reroute { ingresses = [ i ]; paths }) );
      ( t.weights.update_policy,
        active <> [],
        fun () ->
          let i = Prng.choose_list t.prng active in
          let paths =
            Routing.Table.paths_from inst.Placement.Instance.routing i
          in
          Some (Event.Update_policy { ingress = i; policy = fresh_policy i paths })
      );
      ( t.weights.remove,
        tenants <> [],
        fun () ->
          Some (Event.Remove { ingresses = [ Prng.choose_list t.prng tenants ] })
      );
      ( t.weights.capacity_shrink,
        List.exists (fun k -> caps.(k) > 0 && not (List.mem k dead)) alive_switches,
        fun () ->
          let pool =
            List.filter (fun k -> caps.(k) > 0) alive_switches
          in
          let k = Prng.choose_list t.prng pool in
          let capacity =
            if usage.(k) > 0 && Prng.bool t.prng then usage.(k) - 1
            else caps.(k) / 2
          in
          Some (Event.Capacity_shrink { switch = k; capacity }) );
      ( t.weights.switch_fail,
        List.length dead < num_switches / 4 && alive_switches <> [],
        fun () ->
          Some (Event.Switch_fail { switch = Prng.choose_list t.prng alive_switches })
      );
      ( t.weights.link_fail,
        List.length t.killed_links < List.length (Topo.Net.edges net) / 4
        && alive_edges <> [],
        fun () ->
          let u, v = Prng.choose_list t.prng alive_edges in
          t.killed_links <- (u, v) :: t.killed_links;
          Some (Event.Link_fail { u; v }) );
    ]
  in
  let rec draw avail =
    let total = List.fold_left (fun acc (w, _, _) -> acc + w) 0 avail in
    if total = 0 then
      (* Degenerate state; emit something deterministic and harmless. *)
      Event.Remove { ingresses = [ 0 ] }
    else
      let roll = Prng.int t.prng total in
      let rec pick acc = function
        | [] -> assert false
        | ((w, _, build) as c) :: rest ->
          if roll < acc + w then (c, build)
          else pick (acc + w) rest
      in
      let chosen, build = pick 0 avail in
      match build () with
      | Some e -> e
      | None -> draw (List.filter (fun c -> c != chosen) avail)
  in
  draw (List.filter (fun (w, ok, _) -> w > 0 && ok) categories)

let drive t eng n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else go (Engine.handle eng (next t eng) :: acc) (k - 1)
  in
  go [] n

type config = {
  max_retries : int;
  base_backoff_s : float;
  max_backoff_s : float;
  max_total_backoff_s : float;
}

let default_config =
  {
    max_retries = 4;
    base_backoff_s = 0.01;
    max_backoff_s = 1.0;
    max_total_backoff_s = 60.0;
  }

type stats = {
  mutable attempts : int;
  mutable failures : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable forced_resyncs : int;
  mutable backoff_s : float;
  mutable last_op_backoff_s : float;
  mutable max_op_backoff_s : float;
}

(* The registry is fed at the same mutation points as the per-instance
   record.  The record stays: it is the per-event-delta and journal-
   persisted (Marshal) view; the registry is the process-wide aggregate
   across every api instance.  [global_stats] reads the aggregate back
   in the same record shape. *)
let m_attempts =
  Telemetry.Metrics.counter ~help:"switch ops sent, retries included"
    "sdnplace_switch_attempts_total"

let m_failures =
  Telemetry.Metrics.counter ~help:"attempts rejected by the fault plan"
    "sdnplace_switch_failures_total"

let m_timeouts =
  Telemetry.Metrics.counter ~help:"attempts timed out by the fault plan"
    "sdnplace_switch_timeouts_total"

let m_retries =
  Telemetry.Metrics.counter ~help:"re-sends after a failed attempt"
    "sdnplace_switch_retries_total"

let m_gave_up =
  Telemetry.Metrics.counter ~help:"operations that exhausted their retries"
    "sdnplace_switch_gave_up_total"

let m_forced =
  Telemetry.Metrics.counter ~help:"forced full-table resyncs"
    "sdnplace_switch_forced_resyncs_total"

let m_op_backoff_s =
  Telemetry.Metrics.histogram
    ~help:"simulated per-operation backoff (only ops that backed off)"
    ~buckets:[| 0.001; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]
    "sdnplace_switch_op_backoff_seconds"

let global_stats () =
  {
    attempts = Telemetry.Metrics.counter_value m_attempts;
    failures = Telemetry.Metrics.counter_value m_failures;
    timeouts = Telemetry.Metrics.counter_value m_timeouts;
    retries = Telemetry.Metrics.counter_value m_retries;
    gave_up = Telemetry.Metrics.counter_value m_gave_up;
    forced_resyncs = Telemetry.Metrics.counter_value m_forced;
    backoff_s = (Telemetry.Metrics.snapshot m_op_backoff_s).Telemetry.Metrics.sum;
    last_op_backoff_s = 0.0;
    max_op_backoff_s = 0.0;
  }

type t = {
  live : Netsim.entry list array;
  fault : Fault_plan.t;
  config : config;
  stats : stats;
}

let create ?(config = default_config) ~fault live =
  {
    live;
    fault;
    config;
    stats =
      {
        attempts = 0;
        failures = 0;
        timeouts = 0;
        retries = 0;
        gave_up = 0;
        forced_resyncs = 0;
        backoff_s = 0.0;
        last_op_backoff_s = 0.0;
        max_op_backoff_s = 0.0;
      };
  }

let tables t = t.live

let snapshot t = Array.copy t.live

let stats t = t.stats

(* One operation = up to [1 + max_retries] attempts under exponential
   backoff with jitter.  Delays are accounted, not slept: the runtime
   handles events under a wall-clock deadline and must not burn it
   waiting on a switch the fault plan scripted to misbehave. *)
let attempt t ~switch apply =
  let cap = t.config.max_total_backoff_s in
  let acc = ref 0.0 in
  let rec go tries backoff =
    t.stats.attempts <- t.stats.attempts + 1;
    Telemetry.Metrics.incr m_attempts;
    match Fault_plan.draw t.fault ~switch with
    | Fault_plan.Ok ->
      apply ();
      true
    | (Fault_plan.Fail | Fault_plan.Timeout) as o ->
      (match o with
      | Fault_plan.Fail ->
        t.stats.failures <- t.stats.failures + 1;
        Telemetry.Metrics.incr m_failures
      | _ ->
        t.stats.timeouts <- t.stats.timeouts + 1;
        Telemetry.Metrics.incr m_timeouts);
      if tries >= t.config.max_retries then begin
        t.stats.gave_up <- t.stats.gave_up + 1;
        Telemetry.Metrics.incr m_gave_up;
        false
      end
      else begin
        t.stats.retries <- t.stats.retries + 1;
        Telemetry.Metrics.incr m_retries;
        (* Clamp the per-operation accumulation: a huge [max_retries]
           (or an unbounded [max_backoff_s]) must neither overflow the
           float accounting nor blow the operation's delay budget. *)
        acc := Float.min cap (!acc +. (backoff *. Fault_plan.jitter t.fault));
        let next = Float.min t.config.max_backoff_s (2.0 *. backoff) in
        go (tries + 1) (if Float.is_finite next then next else backoff)
      end
  in
  let ok = go 0 t.config.base_backoff_s in
  t.stats.last_op_backoff_s <- !acc;
  if !acc > t.stats.max_op_backoff_s then t.stats.max_op_backoff_s <- !acc;
  t.stats.backoff_s <- t.stats.backoff_s +. !acc;
  if !acc > 0.0 then Telemetry.Metrics.observe m_op_backoff_s !acc;
  ok

let install t ~switch entry =
  attempt t ~switch (fun () -> t.live.(switch) <- t.live.(switch) @ [ entry ])

(* Remove exactly one structurally equal entry (the first). *)
let remove_first entry table =
  let rec go = function
    | [] -> None
    | e :: rest when e = entry -> Some rest
    | e :: rest -> Option.map (fun r -> e :: r) (go rest)
  in
  go table

let delete t ~switch entry =
  match remove_first entry t.live.(switch) with
  | None -> true (* idempotent: nothing to delete *)
  | Some without -> attempt t ~switch (fun () -> t.live.(switch) <- without)

let force_set t ~switch table =
  t.stats.forced_resyncs <- t.stats.forced_resyncs + 1;
  Telemetry.Metrics.incr m_forced;
  t.live.(switch) <- table

type config = {
  max_retries : int;
  base_backoff_s : float;
  max_backoff_s : float;
  max_total_backoff_s : float;
}

let default_config =
  {
    max_retries = 4;
    base_backoff_s = 0.01;
    max_backoff_s = 1.0;
    max_total_backoff_s = 60.0;
  }

type stats = {
  mutable attempts : int;
  mutable failures : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable forced_resyncs : int;
  mutable backoff_s : float;
  mutable last_op_backoff_s : float;
  mutable max_op_backoff_s : float;
}

(* The registry is fed at the same mutation points as the per-instance
   record.  The record stays: it is the per-event-delta and journal-
   persisted (Marshal) view; the registry is the process-wide aggregate
   across every api instance.  [global_stats] reads the aggregate back
   in the same record shape. *)
let m_attempts =
  Telemetry.Metrics.counter ~help:"switch ops sent, retries included"
    "sdnplace_switch_attempts_total"

let m_failures =
  Telemetry.Metrics.counter ~help:"attempts rejected by the fault plan"
    "sdnplace_switch_failures_total"

let m_timeouts =
  Telemetry.Metrics.counter ~help:"attempts timed out by the fault plan"
    "sdnplace_switch_timeouts_total"

let m_retries =
  Telemetry.Metrics.counter ~help:"re-sends after a failed attempt"
    "sdnplace_switch_retries_total"

let m_gave_up =
  Telemetry.Metrics.counter ~help:"operations that exhausted their retries"
    "sdnplace_switch_gave_up_total"

let m_forced =
  Telemetry.Metrics.counter ~help:"forced full-table resyncs"
    "sdnplace_switch_forced_resyncs_total"

let backoff_buckets = [| 0.001; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 |]

let m_op_backoff_s =
  Telemetry.Metrics.histogram
    ~help:"simulated per-operation backoff (only ops that backed off)"
    ~buckets:backoff_buckets "sdnplace_switch_op_backoff_seconds"

(* Compensation (rollback) operations get their own backoff series.
   Before this split, a wave or transaction that rolled back contributed
   each aborted operation's backoff to [sdnplace_switch_op_backoff_seconds]
   twice — once forward, once while compensating — so the aggregate
   [global_stats ()].backoff_s (the histogram sum) double-counted the
   aborted work.  Forward ops observe into [m_op_backoff_s], rollback
   compensation into this one. *)
let m_rollback_backoff_s =
  Telemetry.Metrics.histogram
    ~help:"simulated backoff of rollback-compensation ops"
    ~buckets:backoff_buckets "sdnplace_switch_rollback_backoff_seconds"

let global_stats () =
  {
    attempts = Telemetry.Metrics.counter_value m_attempts;
    failures = Telemetry.Metrics.counter_value m_failures;
    timeouts = Telemetry.Metrics.counter_value m_timeouts;
    retries = Telemetry.Metrics.counter_value m_retries;
    gave_up = Telemetry.Metrics.counter_value m_gave_up;
    forced_resyncs = Telemetry.Metrics.counter_value m_forced;
    backoff_s = (Telemetry.Metrics.snapshot m_op_backoff_s).Telemetry.Metrics.sum;
    last_op_backoff_s = 0.0;
    max_op_backoff_s = 0.0;
  }

type t = {
  live : Netsim.entry list array;
  fault : Fault_plan.t;
  config : config;
  stats : stats;
  mutable compensation : bool;
}

let create ?(config = default_config) ~fault live =
  {
    live;
    fault;
    config;
    compensation = false;
    stats =
      {
        attempts = 0;
        failures = 0;
        timeouts = 0;
        retries = 0;
        gave_up = 0;
        forced_resyncs = 0;
        backoff_s = 0.0;
        last_op_backoff_s = 0.0;
        max_op_backoff_s = 0.0;
      };
  }

let tables t = t.live

let snapshot t = Array.copy t.live

let stats t = t.stats

let copy_stats (s : stats) = { s with attempts = s.attempts }

let restore_stats t (s : stats) =
  let d = t.stats in
  d.attempts <- s.attempts;
  d.failures <- s.failures;
  d.timeouts <- s.timeouts;
  d.retries <- s.retries;
  d.gave_up <- s.gave_up;
  d.forced_resyncs <- s.forced_resyncs;
  d.backoff_s <- s.backoff_s;
  d.last_op_backoff_s <- s.last_op_backoff_s;
  d.max_op_backoff_s <- s.max_op_backoff_s

let compensating t f =
  let saved = t.compensation in
  t.compensation <- true;
  Fun.protect ~finally:(fun () -> t.compensation <- saved) f

(* One operation = up to [1 + max_retries] attempts under exponential
   backoff with jitter.  Delays are accounted, not slept: the runtime
   handles events under a wall-clock deadline and must not burn it
   waiting on a switch the fault plan scripted to misbehave. *)
let attempt t ~switch apply =
  let cap = t.config.max_total_backoff_s in
  let acc = ref 0.0 in
  let rec go tries backoff =
    t.stats.attempts <- t.stats.attempts + 1;
    Telemetry.Metrics.incr m_attempts;
    match Fault_plan.draw t.fault ~switch with
    | Fault_plan.Ok ->
      apply ();
      true
    | (Fault_plan.Fail | Fault_plan.Timeout) as o ->
      (match o with
      | Fault_plan.Fail ->
        t.stats.failures <- t.stats.failures + 1;
        Telemetry.Metrics.incr m_failures
      | _ ->
        t.stats.timeouts <- t.stats.timeouts + 1;
        Telemetry.Metrics.incr m_timeouts);
      if tries >= t.config.max_retries then begin
        t.stats.gave_up <- t.stats.gave_up + 1;
        Telemetry.Metrics.incr m_gave_up;
        false
      end
      else begin
        t.stats.retries <- t.stats.retries + 1;
        Telemetry.Metrics.incr m_retries;
        (* Clamp the per-operation accumulation: a huge [max_retries]
           (or an unbounded [max_backoff_s]) must neither overflow the
           float accounting nor blow the operation's delay budget. *)
        acc := Float.min cap (!acc +. (backoff *. Fault_plan.jitter t.fault));
        let next = Float.min t.config.max_backoff_s (2.0 *. backoff) in
        go (tries + 1) (if Float.is_finite next then next else backoff)
      end
  in
  let ok = go 0 t.config.base_backoff_s in
  t.stats.last_op_backoff_s <- !acc;
  if !acc > t.stats.max_op_backoff_s then t.stats.max_op_backoff_s <- !acc;
  t.stats.backoff_s <- t.stats.backoff_s +. !acc;
  if !acc > 0.0 then
    Telemetry.Metrics.observe
      (if t.compensation then m_rollback_backoff_s else m_op_backoff_s)
      !acc;
  ok

let install t ~switch entry =
  attempt t ~switch (fun () -> t.live.(switch) <- t.live.(switch) @ [ entry ])

(* Remove exactly one structurally equal entry (the first). *)
let remove_first entry table =
  let rec go = function
    | [] -> None
    | e :: rest when e = entry -> Some rest
    | e :: rest -> Option.map (fun r -> e :: r) (go rest)
  in
  go table

let delete t ~switch entry =
  match remove_first entry t.live.(switch) with
  | None -> true (* idempotent: nothing to delete *)
  | Some without -> attempt t ~switch (fun () -> t.live.(switch) <- without)

let force_set t ~switch table =
  t.stats.forced_resyncs <- t.stats.forced_resyncs + 1;
  Telemetry.Metrics.incr m_forced;
  t.live.(switch) <- table

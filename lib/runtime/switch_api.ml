type config = {
  max_retries : int;
  base_backoff_s : float;
  max_backoff_s : float;
  max_total_backoff_s : float;
}

let default_config =
  {
    max_retries = 4;
    base_backoff_s = 0.01;
    max_backoff_s = 1.0;
    max_total_backoff_s = 60.0;
  }

type stats = {
  mutable attempts : int;
  mutable failures : int;
  mutable timeouts : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable forced_resyncs : int;
  mutable backoff_s : float;
  mutable last_op_backoff_s : float;
  mutable max_op_backoff_s : float;
}

type t = {
  live : Netsim.entry list array;
  fault : Fault_plan.t;
  config : config;
  stats : stats;
}

let create ?(config = default_config) ~fault live =
  {
    live;
    fault;
    config;
    stats =
      {
        attempts = 0;
        failures = 0;
        timeouts = 0;
        retries = 0;
        gave_up = 0;
        forced_resyncs = 0;
        backoff_s = 0.0;
        last_op_backoff_s = 0.0;
        max_op_backoff_s = 0.0;
      };
  }

let tables t = t.live

let snapshot t = Array.copy t.live

let stats t = t.stats

(* One operation = up to [1 + max_retries] attempts under exponential
   backoff with jitter.  Delays are accounted, not slept: the runtime
   handles events under a wall-clock deadline and must not burn it
   waiting on a switch the fault plan scripted to misbehave. *)
let attempt t ~switch apply =
  let cap = t.config.max_total_backoff_s in
  let acc = ref 0.0 in
  let rec go tries backoff =
    t.stats.attempts <- t.stats.attempts + 1;
    match Fault_plan.draw t.fault ~switch with
    | Fault_plan.Ok ->
      apply ();
      true
    | (Fault_plan.Fail | Fault_plan.Timeout) as o ->
      (match o with
      | Fault_plan.Fail -> t.stats.failures <- t.stats.failures + 1
      | _ -> t.stats.timeouts <- t.stats.timeouts + 1);
      if tries >= t.config.max_retries then begin
        t.stats.gave_up <- t.stats.gave_up + 1;
        false
      end
      else begin
        t.stats.retries <- t.stats.retries + 1;
        (* Clamp the per-operation accumulation: a huge [max_retries]
           (or an unbounded [max_backoff_s]) must neither overflow the
           float accounting nor blow the operation's delay budget. *)
        acc := Float.min cap (!acc +. (backoff *. Fault_plan.jitter t.fault));
        let next = Float.min t.config.max_backoff_s (2.0 *. backoff) in
        go (tries + 1) (if Float.is_finite next then next else backoff)
      end
  in
  let ok = go 0 t.config.base_backoff_s in
  t.stats.last_op_backoff_s <- !acc;
  if !acc > t.stats.max_op_backoff_s then t.stats.max_op_backoff_s <- !acc;
  t.stats.backoff_s <- t.stats.backoff_s +. !acc;
  ok

let install t ~switch entry =
  attempt t ~switch (fun () -> t.live.(switch) <- t.live.(switch) @ [ entry ])

(* Remove exactly one structurally equal entry (the first). *)
let remove_first entry table =
  let rec go = function
    | [] -> None
    | e :: rest when e = entry -> Some rest
    | e :: rest -> Option.map (fun r -> e :: r) (go rest)
  in
  go table

let delete t ~switch entry =
  match remove_first entry t.live.(switch) with
  | None -> true (* idempotent: nothing to delete *)
  | Some without -> attempt t ~switch (fun () -> t.live.(switch) <- without)

let force_set t ~switch table =
  t.stats.forced_resyncs <- t.stats.forced_resyncs + 1;
  t.live.(switch) <- table

let m_races =
  Telemetry.Metrics.counter ~help:"portfolio races run"
    "sdnplace_portfolio_races_total"

let m_entrant_s =
  Telemetry.Metrics.histogram ~help:"per-entrant race wall time"
    "sdnplace_portfolio_entrant_seconds"

let m_cancel_exit_s =
  Telemetry.Metrics.histogram
    ~help:"loser latency from cancellation to cooperative exit"
    "sdnplace_portfolio_cancel_to_exit_seconds"

(* Winner attribution, one series per engine name; registered lazily on
   first win (registration is idempotent and mutex-protected).  The
   stack's two standing entrants are registered eagerly so their series
   exist (at zero) in every linked binary — which is what lets the
   exposition checker know the full series set without running a race. *)
let won name =
  Telemetry.Metrics.incr
    (Telemetry.Metrics.counter ~help:"definitive race results by engine"
       ~labels:[ ("engine", name) ]
       "sdnplace_portfolio_definitive_total")

let () =
  List.iter
    (fun name ->
      ignore
        (Telemetry.Metrics.counter ~help:"definitive race results by engine"
           ~labels:[ ("engine", name) ]
           "sdnplace_portfolio_definitive_total"))
    [ "ilp"; "sat" ]

module Cancel = struct
  (* The flag stays a single atomic bool for the pollers; the fire
     timestamp is written exactly once (by whoever wins the CAS) so
     losers can report their cancel-to-exit latency. *)
  type t = { flag : bool Atomic.t; fired_at : float Atomic.t }

  let create () = { flag = Atomic.make false; fired_at = Atomic.make Float.nan }

  let fire t =
    if Atomic.compare_and_set t.flag false true then
      Atomic.set t.fired_at (Unix.gettimeofday ())

  let fired t = Atomic.get t.flag

  let fired_at t =
    let ts = Atomic.get t.fired_at in
    if Float.is_nan ts then None else Some ts

  let hook t () = Atomic.get t.flag
end

type 'a entrant = { name : string; run : cancel:(unit -> bool) -> 'a }

type 'a finish = {
  from : string;
  result : 'a;
  definitive : bool;
  wall_s : float;
  cancel_to_exit_s : float option;
}

let race ~definitive entrants =
  match entrants with
  | [] -> []
  | first :: rest ->
    Telemetry.Metrics.incr m_races;
    let token = Cancel.create () in
    (* Entrant spans run on spawned domains, whose span scope is empty;
       capture the caller's current span here so they still nest under
       the solve that started the race. *)
    let parent = Telemetry.Trace.current () in
    (* [run] must never raise: a domain that dies with an exception
       before firing the token would leave the other entrants spinning
       on a cancel hook nobody will ever trip.  Everything the entrant
       executes — its [run] body AND the caller-supplied [definitive]
       callback — is caught, the token fired, and the failure carried
       back as a value to be re-raised only after every domain has been
       joined. *)
    let run e =
      let sp = Telemetry.Trace.start ?parent "portfolio.entrant" in
      Telemetry.Trace.add_attr sp "engine" e.name;
      let t0 = Unix.gettimeofday () in
      match
        let result = e.run ~cancel:(Cancel.hook token) in
        (result, definitive result)
      with
      | result, d ->
        if d then begin
          Cancel.fire token;
          won e.name
        end;
        let t1 = Unix.gettimeofday () in
        (* A loser that observed the token reports how long it took to
           unwind from the fire to its return — the cooperative-cancel
           latency the [?cancel] polling loops are supposed to bound. *)
        let cancel_to_exit_s =
          match Cancel.fired_at token with
          | Some tf when not d -> Some (Float.max 0.0 (t1 -. tf))
          | _ -> None
        in
        Telemetry.Metrics.observe m_entrant_s (t1 -. t0);
        (match cancel_to_exit_s with
        | Some dt -> Telemetry.Metrics.observe m_cancel_exit_s dt
        | None -> ());
        Telemetry.Trace.finish sp;
        Ok
          {
            from = e.name;
            result;
            definitive = d;
            wall_s = t1 -. t0;
            cancel_to_exit_s;
          }
      | exception exn ->
        (* Unblock the other entrants before reporting the failure. *)
        Cancel.fire token;
        Telemetry.Trace.finish sp;
        Error exn
    in
    (* Spawn defensively: if the runtime refuses a domain partway
       through, fire the token and join what was already spawned before
       re-raising — no domain may outlive the race. *)
    let others =
      let spawned = ref [] in
      (try
         List.iter
           (fun e -> spawned := Domain.spawn (fun () -> run e) :: !spawned)
           rest
       with exn ->
         Cancel.fire token;
         List.iter (fun d -> ignore (Domain.join d)) !spawned;
         raise exn);
      List.rev !spawned
    in
    let mine = run first in
    let finishes = mine :: List.map Domain.join others in
    List.map
      (function Ok f -> f | Error exn -> raise exn)
      finishes

let default_jobs () = Domain.recommended_domain_count ()

module Pool = struct
  (* Counting slots, not threads: the serving layer schedules shard work
     round by round and only needs an answer to "may this key start one
     more unit right now?".  Mutex-guarded plain ints — acquisition is
     rare (per event, not per packet) and the bulkhead invariant (no key
     exceeds its cap even under concurrent shards) matters more than
     lock-freedom. *)
  type t = {
    lock : Mutex.t;
    slots : int;
    per_key_cap : int;
    mutable total : int;
    by_key : (int, int) Hashtbl.t;
  }

  let create ~slots ~per_key_cap =
    if slots < 1 then invalid_arg "Portfolio.Pool.create: slots must be >= 1";
    if per_key_cap < 1 then
      invalid_arg "Portfolio.Pool.create: per_key_cap must be >= 1";
    {
      lock = Mutex.create ();
      slots;
      per_key_cap;
      total = 0;
      by_key = Hashtbl.create 16;
    }

  let with_lock t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let key_count t key = Option.value (Hashtbl.find_opt t.by_key key) ~default:0

  let try_acquire t ~key =
    with_lock t @@ fun () ->
    let mine = key_count t key in
    if t.total >= t.slots || mine >= t.per_key_cap then false
    else begin
      t.total <- t.total + 1;
      Hashtbl.replace t.by_key key (mine + 1);
      true
    end

  let release t ~key =
    with_lock t @@ fun () ->
    let mine = key_count t key in
    if mine = 0 then invalid_arg "Portfolio.Pool.release: key holds no slot";
    t.total <- t.total - 1;
    if mine = 1 then Hashtbl.remove t.by_key key
    else Hashtbl.replace t.by_key key (mine - 1)

  let reset t =
    with_lock t @@ fun () ->
    t.total <- 0;
    Hashtbl.reset t.by_key

  let in_flight t = with_lock t @@ fun () -> t.total
  let key_in_flight t ~key = with_lock t @@ fun () -> key_count t key
  let slots t = t.slots
end

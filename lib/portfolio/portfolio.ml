module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false

  let fire t = Atomic.set t true

  let fired t = Atomic.get t

  let hook t () = Atomic.get t
end

type 'a entrant = { name : string; run : cancel:(unit -> bool) -> 'a }

type 'a finish = {
  from : string;
  result : 'a;
  definitive : bool;
  wall_s : float;
}

let race ~definitive entrants =
  match entrants with
  | [] -> []
  | first :: rest ->
    let token = Cancel.create () in
    (* [run] must never raise: a domain that dies with an exception
       before firing the token would leave the other entrants spinning
       on a cancel hook nobody will ever trip.  Everything the entrant
       executes — its [run] body AND the caller-supplied [definitive]
       callback — is caught, the token fired, and the failure carried
       back as a value to be re-raised only after every domain has been
       joined. *)
    let run e =
      let t0 = Unix.gettimeofday () in
      match
        let result = e.run ~cancel:(Cancel.hook token) in
        (result, definitive result)
      with
      | result, d ->
        if d then Cancel.fire token;
        Ok
          {
            from = e.name;
            result;
            definitive = d;
            wall_s = Unix.gettimeofday () -. t0;
          }
      | exception exn ->
        (* Unblock the other entrants before reporting the failure. *)
        Cancel.fire token;
        Error exn
    in
    (* Spawn defensively: if the runtime refuses a domain partway
       through, fire the token and join what was already spawned before
       re-raising — no domain may outlive the race. *)
    let others =
      let spawned = ref [] in
      (try
         List.iter
           (fun e -> spawned := Domain.spawn (fun () -> run e) :: !spawned)
           rest
       with exn ->
         Cancel.fire token;
         List.iter (fun d -> ignore (Domain.join d)) !spawned;
         raise exn);
      List.rev !spawned
    in
    let mine = run first in
    let finishes = mine :: List.map Domain.join others in
    List.map
      (function Ok f -> f | Error exn -> raise exn)
      finishes

let default_jobs () = Domain.recommended_domain_count ()

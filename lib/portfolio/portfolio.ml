module Cancel = struct
  type t = bool Atomic.t

  let create () = Atomic.make false

  let fire t = Atomic.set t true

  let fired t = Atomic.get t

  let hook t () = Atomic.get t
end

type 'a entrant = { name : string; run : cancel:(unit -> bool) -> 'a }

type 'a finish = {
  from : string;
  result : 'a;
  definitive : bool;
  wall_s : float;
}

let race ~definitive entrants =
  match entrants with
  | [] -> []
  | first :: rest ->
    let token = Cancel.create () in
    let run e =
      let t0 = Unix.gettimeofday () in
      match e.run ~cancel:(Cancel.hook token) with
      | result ->
        let d = definitive result in
        if d then Cancel.fire token;
        Ok
          {
            from = e.name;
            result;
            definitive = d;
            wall_s = Unix.gettimeofday () -. t0;
          }
      | exception exn ->
        (* Unblock the other entrants before reporting the failure. *)
        Cancel.fire token;
        Error exn
    in
    let others = List.map (fun e -> Domain.spawn (fun () -> run e)) rest in
    let mine = run first in
    let finishes = mine :: List.map Domain.join others in
    List.map
      (function Ok f -> f | Error exn -> raise exn)
      finishes

let default_jobs () = Domain.recommended_domain_count ()

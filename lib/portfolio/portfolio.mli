(** Domains-based parallel solving layer: first-winner-cancels racing.

    The paper solves the same placement instance two ways — an exact ILP
    and a satisfiability formulation — and which one wins depends on how
    over- or under-constrained the instance is (Sections IV-D and V).
    This module provides the generic machinery to exploit that regime
    split on multicore hardware: a shared atomic cancellation token and
    a combinator that races several solver entrants on their own OCaml
    domains, firing the token as soon as one of them produces a
    {e definitive} answer so the losers stop cooperatively.

    The entrants themselves poll the token through the [cancel] hooks
    threaded into {!Ilp.Solver.solve}, {!Cdcl.solve} and friends; this
    layer never kills a domain — every domain is joined before [race]
    returns, so none can leak. *)

(** Shared cancellation token: a single atomic flag, safe to poll from
    any domain at any rate. *)
module Cancel : sig
  type t

  val create : unit -> t

  val fire : t -> unit
  (** Idempotent; all subsequent {!fired} / hook calls return true. *)

  val fired : t -> bool

  val fired_at : t -> float option
  (** Wall-clock time ([Unix.gettimeofday]) at which the token fired. *)

  val hook : t -> unit -> bool
  (** The token as a [cancel] closure for the solver APIs. *)
end

type 'a entrant = {
  name : string;
  run : cancel:(unit -> bool) -> 'a;
      (** must poll [cancel] and return promptly once it fires *)
}

type 'a finish = {
  from : string;  (** the entrant's [name] *)
  result : 'a;
  definitive : bool;  (** this result settled the race *)
  wall_s : float;  (** entrant wall-clock time *)
  cancel_to_exit_s : float option;
      (** for a loser that observed the cancellation token: wall-clock
          latency from the token firing to this entrant's return — the
          cooperative-cancellation lag of its [?cancel] polling loop.
          [None] for the winner and for entrants that finished before
          (or without) any cancellation. *)
}

val race : definitive:('a -> bool) -> 'a entrant list -> 'a finish list
(** Runs every entrant concurrently — the first on the calling domain,
    the rest on freshly spawned ones — and returns all finishes in
    entrant order.  The first entrant whose result satisfies
    [definitive] fires the shared token; the others observe it through
    their [cancel] hook and return early (their partial results are
    still reported).  Every spawned domain is joined before returning;
    if an entrant raises — from its [run] body or from the [definitive]
    callback applied to its result — the token is fired first (so no
    other entrant is left spinning on it), the remaining domains are
    joined, and the first exception in entrant order is re-raised.  A
    [Domain.spawn] refused by the runtime is handled the same way:
    already-spawned entrants are cancelled and joined before the
    failure propagates.  Under no circumstance does a domain outlive
    the call. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the portfolio-wide default
    for [--jobs]. *)

(** Counting admission slots with a per-key fairness cap — the bulkhead
    primitive under the serving layer.

    A pool holds [slots] global units of concurrent work and refuses to
    let any single key (a tenant, say) hold more than [per_key_cap] of
    them, so one flooding key can saturate its own bulkhead but never
    starve the others.  Purely a counter — it never blocks, spawns, or
    queues; callers that are refused a slot retry on their next
    scheduling round.  Safe under concurrent domains. *)
module Pool : sig
  type t

  val create : slots:int -> per_key_cap:int -> t
  (** Raises [Invalid_argument] unless both bounds are >= 1. *)

  val try_acquire : t -> key:int -> bool
  (** Take one slot for [key]; [false] (and no state change) when the
      pool is full or the key is at its cap. *)

  val release : t -> key:int -> unit
  (** Return one of [key]'s slots.  Raises [Invalid_argument] if the key
      holds none — a release/acquire pairing bug, not a runtime
      condition. *)

  val reset : t -> unit
  (** Drop every held slot (used when a drain abandons in-flight work). *)

  val in_flight : t -> int

  val key_in_flight : t -> key:int -> int

  val slots : t -> int
end

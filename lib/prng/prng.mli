(** Deterministic, splittable pseudo-random number generator.

    All randomized components of the library (topology wiring, routing path
    selection, policy synthesis, test-case generation) draw from this module
    rather than [Stdlib.Random] so that every experiment is reproducible from
    a single integer seed.  The generator is SplitMix64 (Steele, Lea &
    Flood, OOPSLA 2014): a 64-bit state advanced by a Weyl sequence and
    finalized with a variant of the MurmurHash3 mixer.  It is fast, has a
    full 2^64 period, and passes BigCrush when used as specified. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy and the original then
    produce identical, independent streams. *)

val assign : t -> t -> unit
(** [assign dst src] overwrites [dst]'s state with [src]'s, after which
    both produce identical streams.  Used to transplant a previously
    {!copy}-captured state back into a live generator (e.g. when a
    crash-recovered run resumes from a mid-update frontier). *)

val split : t -> t
(** [split g] advances [g] and returns a new generator seeded from it, so
    that the two subsequent streams are statistically independent.  Used to
    hand independent sub-streams to sub-components without coupling their
    consumption order. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in \[0, n).  Raises [Invalid_argument] if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in \[lo, hi\] inclusive. *)

val float : t -> float -> float
(** [float g x] is uniform in \[0, x). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

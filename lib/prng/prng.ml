type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let assign dst src = dst.state <- src.state

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = bits64 g }

(* Rejection sampling over the top 62 bits keeps the result exactly
   uniform for any bound that fits in an OCaml [int]. *)
let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  if n land (n - 1) = 0 then mask land (n - 1)
  else
    let rec go v = if v + (n - 1) - (v mod n) < 0 then go (Int64.to_int (Int64.shift_right_logical (bits64 g) 2)) else v mod n in
    go mask

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty interval";
  lo + int g (hi - lo + 1)

let float g x =
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 g) 11) in
  x *. (float_of_int bits /. 9007199254740992.0)

let bool g = Int64.logand (bits64 g) 1L = 1L

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let choose_list g l =
  match l with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(** Seeded request generator for the daemon: the bench's and the
    property tests' synthetic tenant population.

    Deterministic — equal seeds generate equal request sequences — and
    deliberately adversarial: one {e flooder} tenant is drawn far more
    often than its peers (to exercise the per-tenant bulkhead) and a
    configurable fraction of requests are chaos ops (to exercise the
    degradation ladder and the circuit breaker). *)

type weights = {
  connect : int;
  flow : int;
  update : int;
  disconnect : int;
  chaos : int;
}

val default_weights : weights
(** connect 3, flow 6, update 3, disconnect 1, chaos 1. *)

type t

val make :
  ?weights:weights ->
  ?tenants:int ->
  ?flood_tenant:int ->
  ?flood_bias:int ->
  seed:int ->
  unit ->
  t
(** [tenants] is the id space (default 8); [flood_tenant] (default 0)
    is drawn with an extra [flood_bias]-in-[flood_bias+1] chance
    (default 2). *)

val next : t -> Wire.request
(** The next [Submit] request. *)

val capture : t -> string
val restore : string -> t

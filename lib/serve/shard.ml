type config = {
  capacity : int;
  trip_after : int;
  cooldown : int;
  snapshot_every : int;
  engine : Runtime.Engine.config;
}

let default_config =
  {
    capacity = 30;
    trip_after = 3;
    cooldown = 4;
    snapshot_every = 8;
    engine =
      { Runtime.Engine.default_config with Runtime.Engine.deadline_s = 5.0 };
  }

(* ------------------------------------------------------------------ *)
(* Per-tenant circuit breaker                                          *)

type breaker =
  | Closed of { strikes : int }
  | Open of { cooldown_left : int }
  | Half_open

let breaker_name = function
  | Closed _ -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"

let restriction = function
  | Open _ -> Some [ Runtime.Report.Greedy ]
  | Closed _ | Half_open -> None

let breaker_step config b (report : Runtime.Report.t) =
  let escalated =
    (match report.Runtime.Report.rung with
    | Runtime.Report.Greedy | Runtime.Report.Quarantine -> true
    | Runtime.Report.Noop | Runtime.Report.Incremental
    | Runtime.Report.Full_resolve ->
      false)
    || not report.Runtime.Report.verified
  in
  match b with
  | Closed { strikes } ->
    if escalated then
      if strikes + 1 >= config.trip_after then
        Open { cooldown_left = config.cooldown }
      else Closed { strikes = strikes + 1 }
    else Closed { strikes = 0 }
  | Open { cooldown_left } ->
    (* Under restriction the greedy rung is the expected outcome, so only
       the floor (quarantine) or a failed verification resets the
       cooldown. *)
    if report.Runtime.Report.rung = Runtime.Report.Quarantine
       || not report.Runtime.Report.verified
    then Open { cooldown_left = config.cooldown }
    else if cooldown_left <= 1 then Half_open
    else Open { cooldown_left = cooldown_left - 1 }
  | Half_open ->
    if escalated then Open { cooldown_left = config.cooldown }
    else Closed { strikes = 0 }

(* ------------------------------------------------------------------ *)
(* Durable translation state (the journal's client blob)               *)

type tstate = { ts_active : bool; ts_ingress : int option; ts_breaker : breaker }

let fresh_ts = { ts_active = false; ts_ingress = None; ts_breaker = Closed { strikes = 0 } }

(* Everything the deterministic op->event translation depends on, beyond
   the engine itself.  Captured (post-draw, ticket marked done) into the
   Ev_begin client blob of every journaled event, so recovery restores
   the exact translation stream.  [cs_last] names the tenant whose
   breaker step is still pending when this blob was written at Ev_begin
   — the report was not in hand yet; recovery patches that one step from
   the last replayed report. *)
type cstate = {
  cs_prng : Prng.t;
  mutable cs_done_below : int;  (** every ticket < this is processed *)
  mutable cs_done : int list;  (** processed tickets >= [cs_done_below] *)
  mutable cs_tenants : (int * tstate) list;  (** sorted by tenant *)
  mutable cs_killed : (int * int) list;  (** links cut by chaos ops *)
  mutable cs_last : int option;
}

let initial_cstate ~seed ~id =
  {
    cs_prng = Prng.create ((seed * 0x1003F) lxor ((id * 131) + 17));
    cs_done_below = 1;
    cs_done = [];
    cs_tenants = [];
    cs_killed = [];
    cs_last = None;
  }

let capture cs = Marshal.to_string cs []
let restore blob = (Marshal.from_string blob 0 : cstate)

let ts_find cs tenant =
  Option.value (List.assoc_opt tenant cs.cs_tenants) ~default:fresh_ts

let ts_set cs tenant ts =
  cs.cs_tenants <-
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      ((tenant, ts) :: List.remove_assoc tenant cs.cs_tenants)

let rec advance_watermark cs =
  if List.mem cs.cs_done_below cs.cs_done then begin
    cs.cs_done <- List.filter (fun x -> x <> cs.cs_done_below) cs.cs_done;
    cs.cs_done_below <- cs.cs_done_below + 1;
    advance_watermark cs
  end

let mark_done cs ticket =
  cs.cs_done <- List.sort compare (ticket :: cs.cs_done);
  advance_watermark cs

let is_done cs ticket = ticket < cs.cs_done_below || List.mem ticket cs.cs_done

(* ------------------------------------------------------------------ *)
(* The shard                                                           *)

type stores = { journal : Journal.Store.t; intake : Journal.Store.t }

type t = {
  config : config;
  stores : stores;
  intake_b : Journal.Store.Batched.t;  (* group-commit view of [stores.intake] *)
  jeng : Journal.Journaled.t;
  mutable cs : cstate;
  mutable next_ticket : int;
  mutable queue : (int * int * Wire.op) list;  (* (ticket, tenant, op), FIFO *)
  mutable since_snapshot : int;
}

(* One durable intake record: what was acked, exactly. *)
type intake = { it_ticket : int; it_tenant : int; it_op : Wire.op }

let encode_intake it = Journal.Wal.frame (Marshal.to_string it [])

let decode_intakes bytes =
  let payloads, _ = Journal.Wal.scan_payloads bytes in
  List.filter_map
    (fun p ->
      match (Marshal.from_string p 0 : intake) with
      | it -> Some it
      | exception _ -> None)
    payloads

let journal_config = { Journal.Journaled.snapshot_every = max_int }

let base_solution config =
  let net = Topo.Fattree.make 4 in
  Placement.Solution.empty
    (Placement.Instance.make ~net
       ~routing:(Routing.Table.of_paths [])
       ~policies:[]
       ~capacities:(Placement.Instance.uniform_capacity net config.capacity))

let create ?(config = default_config) ?kill ~stores ~seed ~id () =
  let jeng =
    Journal.Journaled.create ~config:config.engine ~journal:journal_config
      ?kill ~store:stores.journal (base_solution config)
  in
  let cs = initial_cstate ~seed ~id in
  Journal.Journaled.set_client jeng (capture cs);
  Journal.Journaled.snapshot_now jeng;
  stores.intake.Journal.Store.snap_write "";
  stores.intake.Journal.Store.wal_reset ();
  {
    config;
    stores;
    intake_b = Journal.Store.Batched.wrap stores.intake;
    jeng;
    cs;
    next_ticket = 1;
    queue = [];
    since_snapshot = 0;
  }

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let admit ?(sync = true) t ~tenant ~op =
  let ticket = t.next_ticket in
  t.next_ticket <- ticket + 1;
  Journal.Store.Batched.append t.intake_b
    (encode_intake { it_ticket = ticket; it_tenant = tenant; it_op = op });
  if sync then Journal.Store.Batched.flush t.intake_b;
  t.queue <- t.queue @ [ (ticket, tenant, op) ];
  ticket

let flush_intake t = Journal.Store.Batched.flush t.intake_b

let staged_intake t = Journal.Store.Batched.staged t.intake_b

type intake_stats = { appends : int; fsyncs : int }

let intake_stats t =
  {
    appends = Journal.Store.Batched.appends t.intake_b;
    fsyncs = Journal.Store.Batched.syncs t.intake_b;
  }

let pending t = List.length t.queue

let pending_for t ~tenant =
  List.length (List.filter (fun (_, tn, _) -> tn = tenant) t.queue)

let resolved t ~ticket = is_done t.cs ticket

(* ------------------------------------------------------------------ *)
(* Translation: Wire.op -> Runtime.Event, against the live network      *)

let eng t = Journal.Journaled.engine t.jeng

let path_to prng net ~ingress ~egress =
  let src = Topo.Net.host_attach net ingress in
  let dst = Topo.Net.host_attach net egress in
  match Routing.Shortest.random_shortest_path prng net ~src ~dst with
  | Some switches -> Some (Routing.Path.make ~ingress ~egress ~switches ())
  | None -> None

let translate t tenant op =
  let e = eng t in
  let inst = (Runtime.Engine.good e).Placement.Solution.instance in
  let net = inst.Placement.Instance.net in
  let dead = Runtime.Engine.dead_switches e in
  let cs = t.cs in
  let ts = ts_find cs tenant in
  let attach_alive h = not (List.mem (Topo.Net.host_attach net h) dead) in
  let hosts = List.init (Topo.Net.num_hosts net) Fun.id in
  let taken =
    List.filter_map (fun (_, s) -> if s.ts_active then s.ts_ingress else None)
      cs.cs_tenants
  in
  let egress_pool i = List.filter (fun h -> h <> i && attach_alive h) hosts in
  let fresh_paths i =
    let pool = egress_pool i in
    if pool = [] then []
    else
      let n = 1 + Prng.int cs.cs_prng 2 in
      List.filter_map
        (fun _ ->
          path_to cs.cs_prng net ~ingress:i
            ~egress:(Prng.choose_list cs.cs_prng pool))
        (List.init n Fun.id)
  in
  let fresh_policy i paths rules =
    let egresses =
      List.sort_uniq compare
        (List.map (fun (p : Routing.Path.t) -> p.Routing.Path.egress) paths)
    in
    let egresses = if egresses = [] then egress_pool i else egresses in
    Classbench.policy_for_ingress cs.cs_prng ~net ~egresses ~num_rules:rules
  in
  match op with
  | Wire.Connect { rules } -> (
    if ts.ts_active then Error "already connected"
    else
      let free =
        List.filter
          (fun h ->
            attach_alive h
            && (not (List.mem h taken))
            && not (List.mem h (Runtime.Engine.quarantined e)))
          hosts
      in
      if free = [] then Error "no free ingress"
      else
        let i = Prng.choose_list cs.cs_prng free in
        match fresh_paths i with
        | [] -> Error "no route"
        | paths ->
          ts_set cs tenant { ts with ts_active = true; ts_ingress = Some i };
          Ok
            (Runtime.Event.Install
               { ingress = i; policy = fresh_policy i paths (max 1 rules); paths }))
  | Wire.Flow -> (
    match ts.ts_ingress with
    | Some i when ts.ts_active -> (
      match fresh_paths i with
      | [] -> Error "no route"
      | paths -> Ok (Runtime.Event.Reroute { ingresses = [ i ]; paths }))
    | _ -> Error "not connected")
  | Wire.Update { rules } -> (
    match ts.ts_ingress with
    | Some i when ts.ts_active ->
      let paths = Routing.Table.paths_from inst.Placement.Instance.routing i in
      Ok
        (Runtime.Event.Update_policy
           { ingress = i; policy = fresh_policy i paths (max 1 rules) })
    | _ -> Error "not connected")
  | Wire.Disconnect -> (
    match ts.ts_ingress with
    | Some i when ts.ts_active ->
      ts_set cs tenant { ts with ts_active = false; ts_ingress = None };
      Ok (Runtime.Event.Remove { ingresses = [ i ] })
    | _ -> Error "not connected")
  | Wire.Chaos c -> (
    let num_switches = Topo.Net.num_switches net in
    let alive =
      List.filter (fun k -> not (List.mem k dead)) (List.init num_switches Fun.id)
    in
    match c with
    | Wire.Kill_switch ->
      if List.length dead >= num_switches / 4 || alive = [] then
        Error "too many dead switches"
      else
        Ok
          (Runtime.Event.Switch_fail
             { switch = Prng.choose_list cs.cs_prng alive })
    | Wire.Cut_link ->
      let edges = Topo.Net.edges net in
      let alive_edges =
        List.filter
          (fun (a, b) ->
            (not (List.mem a dead))
            && (not (List.mem b dead))
            && not (List.mem (a, b) cs.cs_killed))
          edges
      in
      if List.length cs.cs_killed >= List.length edges / 4 || alive_edges = []
      then Error "too many cut links"
      else begin
        let u, v = Prng.choose_list cs.cs_prng alive_edges in
        cs.cs_killed <- (u, v) :: cs.cs_killed;
        Ok (Runtime.Event.Link_fail { u; v })
      end
    | Wire.Shrink_capacity -> (
      let caps = inst.Placement.Instance.capacities in
      match List.filter (fun k -> caps.(k) > 0) alive with
      | [] -> Error "no capacity left to shrink"
      | pool ->
        let k = Prng.choose_list cs.cs_prng pool in
        Ok (Runtime.Event.Capacity_shrink { switch = k; capacity = caps.(k) / 2 })))

(* ------------------------------------------------------------------ *)
(* Processing                                                          *)

type outcome =
  | Applied of { rung : Runtime.Report.rung; verified : bool; quarantined : bool }
  | Quarantined of { reason : string }

type processed = { p_tenant : int; p_ticket : int; p_outcome : outcome }

let snapshot t =
  (* Journal first: its snapshot carries the done-set that lets recovery
     discard the intake records compaction is about to duplicate or that
     a crash leaves behind. *)
  Journal.Journaled.snapshot_now t.jeng;
  let frames =
    String.concat ""
      (List.map
         (fun (ticket, tenant, op) ->
           encode_intake { it_ticket = ticket; it_tenant = tenant; it_op = op })
         t.queue)
  in
  (* Pending records move to the atomic snapshot slot before the log is
     truncated: a crash between the two reads them twice (deduped on
     recovery), never zero times.  The snap slot is durable on return,
     so any appends still staged under group commit are covered by it —
     their eventual acks no longer need a WAL barrier. *)
  t.stores.intake.Journal.Store.snap_write frames;
  t.stores.intake.Journal.Store.wal_reset ();
  Journal.Store.Batched.note_durable t.intake_b;
  t.since_snapshot <- 0

let process_one t (ticket, tenant, op) =
  match translate t tenant op with
  | Error reason ->
    (* A deterministic resolution, not an event: nothing reaches the
       engine or the journal.  The done-marking becomes durable with the
       next journaled event or snapshot; until then a crash simply
       re-translates this ticket to the same rejection. *)
    mark_done t.cs ticket;
    { p_tenant = tenant; p_ticket = ticket; p_outcome = Quarantined { reason } }
  | Ok event ->
    mark_done t.cs ticket;
    let b = (ts_find t.cs tenant).ts_breaker in
    let rungs = restriction b in
    t.cs.cs_last <- Some tenant;
    let blob = capture t.cs in
    let report = Journal.Journaled.handle ~client:blob ?rungs t.jeng event in
    let ts = ts_find t.cs tenant in
    ts_set t.cs tenant { ts with ts_breaker = breaker_step t.config b report };
    t.cs.cs_last <- None;
    Journal.Journaled.set_client t.jeng (capture t.cs);
    t.since_snapshot <- t.since_snapshot + 1;
    if t.since_snapshot >= t.config.snapshot_every then snapshot t;
    let quarantined =
      match ts.ts_ingress with
      | Some i -> List.mem i report.Runtime.Report.quarantined
      | None -> false
    in
    {
      p_tenant = tenant;
      p_ticket = ticket;
      p_outcome =
        Applied
          {
            rung = report.Runtime.Report.rung;
            verified = report.Runtime.Report.verified;
            quarantined;
          };
    }

type batch = (int * int * Wire.op) list

(* Selection is split from execution so the daemon can plan every
   shard's round sequentially (the pool walk below is the only
   cross-shard coupling) and then execute the per-shard batches on a
   domain pool: by the time a batch runs, it touches nothing but its own
   shard. *)
(* Selection does NOT dequeue: a planned ticket stays in [t.queue] until
   the moment {!execute_batch} reaches it.  That keeps the compaction
   invariant — every admitted-unprocessed ticket is in [t.queue] or in
   the done-set at any {!snapshot} point — even when an event early in a
   batch triggers a mid-batch snapshot.  (Dequeuing the whole batch at
   plan time once made such a snapshot's intake compaction destroy the
   only durable record of the batch's still-unprocessed tail: a
   subsequently quarantined — never journaled — ticket then vanished
   entirely across a crash and its number was re-issued to a new
   admission.) *)
let plan_round t ~pool =
  let blocked = Hashtbl.create 8 in
  let acquired = ref [] in
  let out = ref [] in
  List.iter
    (fun ((_, tenant, _) as e) ->
      if Hashtbl.mem blocked tenant then ()
      else if Portfolio.Pool.try_acquire pool ~key:tenant then begin
        acquired := tenant :: !acquired;
        out := e :: !out
      end
      else
        (* Skipping the whole tenant for the round keeps its own tickets
           FIFO while later tenants overtake it. *)
        Hashtbl.replace blocked tenant ())
    t.queue;
  List.iter (fun tenant -> Portfolio.Pool.release pool ~key:tenant) !acquired;
  List.rev !out

let execute_batch t batch =
  List.map
    (fun ((ticket, _, _) as e) ->
      t.queue <- List.filter (fun (tk, _, _) -> tk <> ticket) t.queue;
      process_one t e)
    batch

let process_round t ~pool = execute_batch t (plan_round t ~pool)

let drain t =
  let out = ref [] in
  while t.queue <> [] do
    let n = max 1 (pending t) in
    let pool = Portfolio.Pool.create ~slots:n ~per_key_cap:n in
    out := !out @ process_round t ~pool
  done;
  snapshot t;
  !out

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)

type recovered = {
  shard : t;
  replayed : int;
  reissued : int;
  divergences : string list;
}

let recover ?(config = default_config) ?kill ~stores ~seed ~id () =
  match
    Journal.Journaled.recover ~config:config.engine ~journal:journal_config
      ?kill ~resnap:false ~store:stores.journal ()
  with
  | Error _ as e -> e
  | Ok r ->
    let jeng = r.Journal.Journaled.journaled in
    let cs =
      match Journal.Journaled.client jeng with
      | Some blob -> restore blob
      | None -> initial_cstate ~seed ~id
    in
    (* The blob logged at the last Ev_begin predates that event's report;
       its breaker step is the one transition recovery owes.  The report
       is the last one the journal just replayed. *)
    (match (cs.cs_last, List.rev r.Journal.Journaled.replayed) with
    | Some tenant, (_, report) :: _ ->
      let ts = ts_find cs tenant in
      ts_set cs tenant { ts with ts_breaker = breaker_step config ts.ts_breaker report }
    | _ -> ());
    cs.cs_last <- None;
    Journal.Journaled.set_client jeng (capture cs);
    let snap_bytes =
      Option.value (stores.intake.Journal.Store.snap_read ()) ~default:""
    in
    let wal_bytes = stores.intake.Journal.Store.wal_read () in
    let all = decode_intakes snap_bytes @ decode_intakes wal_bytes in
    let seen = Hashtbl.create 16 in
    let entries =
      List.filter
        (fun it ->
          if Hashtbl.mem seen it.it_ticket then false
          else begin
            Hashtbl.replace seen it.it_ticket ();
            true
          end)
        all
    in
    let pending_entries =
      List.sort
        (fun a b -> compare a.it_ticket b.it_ticket)
        (List.filter (fun it -> not (is_done cs it.it_ticket)) entries)
    in
    let max_seen =
      List.fold_left
        (fun acc it -> max acc it.it_ticket)
        (List.fold_left max (cs.cs_done_below - 1) cs.cs_done)
        entries
    in
    let t =
      {
        config;
        stores;
        intake_b = Journal.Store.Batched.wrap stores.intake;
        jeng;
        cs;
        next_ticket = max_seen + 1;
        queue =
          List.map
            (fun it -> (it.it_ticket, it.it_tenant, it.it_op))
            pending_entries;
        since_snapshot = 0;
      }
    in
    snapshot t;
    Ok
      {
        shard = t;
        replayed = List.length r.Journal.Journaled.replayed;
        reissued = List.length pending_entries;
        divergences = r.Journal.Journaled.divergences;
      }

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

let digest x = Digest.to_hex (Digest.string (Marshal.to_string x [ Marshal.No_sharing ]))

(* ------------------------------------------------------------------ *)
(* Traffic tick: walk one drifting-Zipf epoch over the live tables.
   Stateless — a pure function of the parameters and the last-good
   placement — so a restarted shard answers byte-identically. *)

let traffic_walk t ~seed ~epoch ~packets ~alpha ~drift ~probes =
  let e = eng t in
  let inst = (Runtime.Engine.good e).Placement.Solution.instance in
  let paths =
    Array.of_list (Routing.Table.paths inst.Placement.Instance.routing)
  in
  let flows = Array.length paths in
  if flows = 0 || packets <= 0 then (flows, 0, 0)
  else begin
    let zcfg =
      {
        Traffic.Zipf.flows;
        packets;
        alpha = Float.max 0.0 alpha;
        drift = Float.max 0.0 drift;
        seed;
      }
    in
    let counts = (Traffic.Zipf.epoch zcfg (max 0 epoch)).Traffic.Zipf.counts in
    let tables = Runtime.Engine.table_snapshot e in
    let g = Prng.create (((seed * 0x100000001B3) + max 0 epoch) lxor 0x243F6A8885A308D) in
    let probes = max 1 probes in
    let delivered = ref 0 and dropped = ref 0 in
    Array.iteri
      (fun f c ->
        if c > 0 then begin
          let n = min c probes in
          let q = c / n and r = c mod n in
          let path = paths.(f) in
          for k = 0 to n - 1 do
            let w = if k < r then q + 1 else q in
            let pkt = Ternary.Field.random_packet g path.Routing.Path.flow in
            match
              Netsim.forward_tables tables path
                ~tag:path.Routing.Path.ingress pkt
            with
            | Netsim.Delivered -> delivered := !delivered + w
            | Netsim.Dropped _ -> dropped := !dropped + w
          done
        end)
      counts;
    (flows, !delivered, !dropped)
  end

let cs_view cs =
  ( cs.cs_done_below,
    cs.cs_done,
    List.map
      (fun (tn, ts) -> (tn, ts.ts_active, ts.ts_ingress, breaker_name ts.ts_breaker))
      cs.cs_tenants,
    List.sort compare cs.cs_killed )

let signature t =
  let e = eng t in
  digest
    ( Runtime.Engine.table_snapshot e,
      Runtime.Engine.quarantined e,
      Runtime.Engine.dead_switches e,
      Runtime.Engine.live_entries e,
      Journal.Journaled.seq t.jeng,
      cs_view t.cs,
      List.map (fun (tk, tn, _) -> (tk, tn)) t.queue )

let tenant_signature t ~tenant =
  let e = eng t in
  let inst = (Runtime.Engine.good e).Placement.Solution.instance in
  let ts = ts_find t.cs tenant in
  let policy, paths, fenced =
    match ts.ts_ingress with
    | Some i ->
      ( List.assoc_opt i inst.Placement.Instance.policies,
        Routing.Table.paths_from inst.Placement.Instance.routing i,
        List.mem i (Runtime.Engine.quarantined e) )
    | None -> (None, [], false)
  in
  digest
    (ts.ts_active, ts.ts_ingress, breaker_name ts.ts_breaker, policy, paths, fenced)

let tenants t = List.map fst t.cs.cs_tenants

let breaker_state t ~tenant = breaker_name (ts_find t.cs tenant).ts_breaker

let seq t = Journal.Journaled.seq t.jeng

(** The daemon's wire protocol: tenant operations in, typed admission
    and outcome replies out.

    Messages reuse the journal's WAL framing ([[u32 len][u32 crc]] +
    Marshal payload, see {!Journal.Wal}), so a torn or corrupt stream is
    cut at the first bad frame instead of crashing the decoder — the
    same tear-tolerance the crash-recovery path already trusts.  The
    protocol is deliberately tenant-{e operation} shaped (connect, send
    flows, edit policy, disconnect) rather than engine-event shaped: the
    daemon owns the deterministic translation into {!Runtime.Event}
    values, which is what makes equal request streams reproduce equal
    placements byte for byte. *)

type chaos =
  | Kill_switch  (** fail the busiest live switch in the tenant's shard *)
  | Cut_link  (** fail a random live link *)
  | Shrink_capacity  (** halve a random switch's remaining ACL budget *)

type op =
  | Connect of { rules : int }
      (** tenant arrival: allocate an ingress, route paths, install a
          fresh [rules]-rule policy *)
  | Flow  (** re-route the tenant onto fresh paths *)
  | Update of { rules : int }  (** replace the tenant's policy *)
  | Disconnect  (** tenant departure *)
  | Chaos of chaos  (** operator-injected infrastructure fault *)

type request =
  | Submit of { tenant : int; op : op }
  | Drain
      (** stop admitting, process everything in flight, snapshot every
          shard, reply {!Drained} *)
  | Stats
  | Metrics_dump
      (** dump the daemon's telemetry registry in Prometheus exposition
          format; reply {!Metrics_text} *)
  | Traffic_tick of {
      seed : int;
      epoch : int;
      packets : int;
      alpha : float;
      drift : float;
      probes : int;
    }
      (** walk one drifting-Zipf traffic epoch (see {!Traffic.Zipf})
          over every shard's live tables and report the aggregate
          outcome; stateless in the daemon — the whole walk is a pure
          function of these parameters and the live placement, so a
          restarted daemon answers identically.  Reply
          {!Traffic_report}. *)

type scope =
  | Global  (** the daemon-wide admission queue is full *)
  | Tenant  (** this tenant's own queue is at its bulkhead cap *)

(** Every reply to a [Submit] is typed: an acked event gets a durable
    ticket, a shed event gets an explicit overload reply naming which
    bound it hit — the daemon never silently drops. *)
type reply =
  | Accepted of { tenant : int; ticket : int }
      (** durable: the (tenant, op) pair survived an fsync before this
          reply was sent *)
  | Rejected_overload of {
      tenant : int;
      scope : scope;
      queued : int;  (** occupancy that triggered the shed *)
      limit : int;
    }
  | Rejected of { reason : string }
      (** non-overload refusal (draining, malformed) — never raised for
          load *)
  | Applied of {
      tenant : int;
      ticket : int;
      rung : Runtime.Report.rung;
      verified : bool;
      quarantined : bool;  (** the event fenced the tenant's ingress *)
    }  (** the acked event's final outcome *)
  | Quarantined_ticket of { tenant : int; ticket : int; reason : string }
      (** the acked event could not be translated against the live
          network (e.g. [Flow] from a disconnected tenant) — resolved
          deterministically, identically after any crash/restart *)
  | Drained of { processed : int }
  | Stats_reply of {
      tenants : int;
      accepted : int;
      applied : int;
      quarantined : int;
      shed : int;
      pending : int;
    }
  | Metrics_text of { text : string }
      (** Prometheus exposition text (see {!Telemetry.Metrics.render}) *)
  | Traffic_report of {
      epoch : int;
      flows : int;  (** routed paths walked, summed over shards *)
      delivered : int;  (** traffic-weighted packets delivered *)
      dropped : int;  (** traffic-weighted packets dropped on-path *)
    }

val describe_request : request -> string
val describe_reply : reply -> string

val encode_request : request -> string
(** One framed message, ready to write. *)

val encode_reply : reply -> string

val decode_requests : string -> request list * int
(** The longest valid prefix of a byte stream as messages plus the bytes
    consumed; a torn tail (or garbage) stops the decode, never raises. *)

val decode_replies : string -> reply list * int

type frames =
  | Frames of string list
      (** every complete frame's payload, arrival order; an incomplete
          tail stays buffered for the next read *)
  | Torn  (** impossible length or CRC mismatch — the stream can never
              become valid again; close the session *)

val take_frames : Buffer.t -> frames
(** Extract the complete frames from a growing session buffer, leaving
    any incomplete tail in place.  The incremental sibling of
    {!decode_requests}: a live session can tell "not yet arrived" (wait
    for more bytes) from "never valid" ([Torn] — drop the connection),
    which the whole-stream prefix decode cannot. *)

val read_message : in_channel -> string option
(** Blocking read of one framed payload; [None] on EOF or a corrupt
    frame (either way the stream is unusable and the connection should
    drain). *)

(* A fixed pool of worker domains with a deterministic task->worker
   assignment.  The daemon's round loop hands it one thunk per shard;
   slot w runs the thunks whose index i satisfies [i mod jobs = w], in
   increasing i, so the work each domain performs — and therefore each
   shard's execution stream — is a function of the task list alone,
   never of scheduling.  Slot 0 is the calling domain: at [jobs = 1] no
   domain is ever spawned and [run] degenerates to a plain in-order
   loop. *)

type t = {
  jobs : int;
  lock : Mutex.t;
  cond : Condition.t;
  (* One "round" at a time: [job] is the body every worker runs (with
     its slot index), [gen] distinguishes rounds so a worker that wakes
     late never re-runs a finished one, [remaining] counts workers still
     inside the current round. *)
  mutable job : (int -> unit) option;
  mutable gen : int;
  mutable remaining : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let worker_loop t w =
  let seen = ref 0 in
  let rec next () =
    Mutex.lock t.lock;
    while t.gen = !seen && not t.stopping do
      Condition.wait t.cond t.lock
    done;
    if t.stopping then Mutex.unlock t.lock
    else begin
      seen := t.gen;
      let f = Option.get t.job in
      Mutex.unlock t.lock;
      (* [f] never raises: [run] wraps every task in its own handler. *)
      f w;
      Mutex.lock t.lock;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      next ()
    end
  in
  next ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Serve.Exec.create: jobs must be >= 1";
  let t =
    {
      jobs;
      lock = Mutex.create ();
      cond = Condition.create ();
      job = None;
      gen = 0;
      remaining = 0;
      stopping = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let jobs t = t.jobs

let stop t =
  Mutex.lock t.lock;
  let ds = t.domains in
  t.stopping <- true;
  t.domains <- [];
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  List.iter Domain.join ds

let stopped t =
  Mutex.lock t.lock;
  let s = t.stopping in
  Mutex.unlock t.lock;
  s

(* Every task runs, whatever the others do: a task that raises is
   recorded, never propagated into its worker, and the first failure in
   {e index} order is re-raised only after the barrier — so a simulated
   crash in shard s still lets every other shard finish its planned
   batch, exactly like the sequential loop finishing the round before
   the exception surfaces.  That completion rule is what keeps crash
   runs byte-identical at every [jobs]. *)
let run t tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    if stopped t then invalid_arg "Serve.Exec.run: executor stopped";
    let results = Array.make n None in
    let errors = Array.make n None in
    let run_task i =
      match tasks.(i) () with
      | v -> results.(i) <- Some v
      | exception exn -> errors.(i) <- Some exn
    in
    (* A slot holding several tasks overlaps them on lightweight
       threads rather than chaining them: the tasks are share-nothing
       by contract, each writes a distinct results slot, and a thread
       blocked in a store barrier (fsync releases the runtime lock)
       lets its siblings run — so one domain keeps several shards'
       commit waits in flight.  The more threads a device sees parked
       in fsync at once, the more records each journal commit absorbs,
       which is where the over-subscription pays on few cores. *)
    let slot w =
      let mine = ref [] in
      let i = ref w in
      while !i < n do
        mine := !i :: !mine;
        i := !i + t.jobs
      done;
      match List.rev !mine with
      | [] -> ()
      | [ i ] -> run_task i
      | first :: rest ->
          let threads = List.map (Thread.create run_task) rest in
          run_task first;
          List.iter Thread.join threads
    in
    if t.jobs = 1 || n = 1 then
      (* The sequential reference: no domains, no threads, plain
         index-order loop — what every other configuration must match
         byte-for-byte. *)
      for i = 0 to n - 1 do
        run_task i
      done
    else begin
      Mutex.lock t.lock;
      t.job <- Some slot;
      t.remaining <- t.jobs - 1;
      t.gen <- t.gen + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      slot 0;
      Mutex.lock t.lock;
      while t.remaining > 0 do
        Condition.wait t.cond t.lock
      done;
      t.job <- None;
      Mutex.unlock t.lock
    end;
    Array.iter (function Some exn -> raise exn | None -> ()) errors;
    Array.map Option.get results
  end

type chaos = Kill_switch | Cut_link | Shrink_capacity

type op =
  | Connect of { rules : int }
  | Flow
  | Update of { rules : int }
  | Disconnect
  | Chaos of chaos

type request =
  | Submit of { tenant : int; op : op }
  | Drain
  | Stats
  | Metrics_dump
  | Traffic_tick of {
      seed : int;
      epoch : int;
      packets : int;
      alpha : float;
      drift : float;
      probes : int;
    }

type scope = Global | Tenant

type reply =
  | Accepted of { tenant : int; ticket : int }
  | Rejected_overload of {
      tenant : int;
      scope : scope;
      queued : int;
      limit : int;
    }
  | Rejected of { reason : string }
  | Applied of {
      tenant : int;
      ticket : int;
      rung : Runtime.Report.rung;
      verified : bool;
      quarantined : bool;
    }
  | Quarantined_ticket of { tenant : int; ticket : int; reason : string }
  | Drained of { processed : int }
  | Stats_reply of {
      tenants : int;
      accepted : int;
      applied : int;
      quarantined : int;
      shed : int;
      pending : int;
    }
  | Metrics_text of { text : string }
  | Traffic_report of {
      epoch : int;
      flows : int;
      delivered : int;
      dropped : int;
    }

let chaos_name = function
  | Kill_switch -> "kill-switch"
  | Cut_link -> "cut-link"
  | Shrink_capacity -> "shrink-capacity"

let op_name = function
  | Connect { rules } -> Printf.sprintf "connect(rules=%d)" rules
  | Flow -> "flow"
  | Update { rules } -> Printf.sprintf "update(rules=%d)" rules
  | Disconnect -> "disconnect"
  | Chaos c -> Printf.sprintf "chaos(%s)" (chaos_name c)

let describe_request = function
  | Submit { tenant; op } -> Printf.sprintf "submit t%d %s" tenant (op_name op)
  | Drain -> "drain"
  | Stats -> "stats"
  | Metrics_dump -> "metrics-dump"
  | Traffic_tick { seed; epoch; packets; alpha; drift; probes } ->
    Printf.sprintf
      "traffic-tick seed=%d epoch=%d packets=%d alpha=%g drift=%g probes=%d"
      seed epoch packets alpha drift probes

let scope_name = function Global -> "global" | Tenant -> "tenant"

let describe_reply = function
  | Accepted { tenant; ticket } -> Printf.sprintf "accepted t%d #%d" tenant ticket
  | Rejected_overload { tenant; scope; queued; limit } ->
    Printf.sprintf "rejected-overload t%d %s %d/%d" tenant (scope_name scope)
      queued limit
  | Rejected { reason } -> Printf.sprintf "rejected (%s)" reason
  | Applied { tenant; ticket; rung; verified; quarantined } ->
    Printf.sprintf "applied t%d #%d rung=%s verified=%b quarantined=%b" tenant
      ticket (Runtime.Report.rung_name rung) verified quarantined
  | Quarantined_ticket { tenant; ticket; reason } ->
    Printf.sprintf "quarantined t%d #%d (%s)" tenant ticket reason
  | Drained { processed } -> Printf.sprintf "drained processed=%d" processed
  | Stats_reply { tenants; accepted; applied; quarantined; shed; pending } ->
    Printf.sprintf
      "stats tenants=%d accepted=%d applied=%d quarantined=%d shed=%d pending=%d"
      tenants accepted applied quarantined shed pending
  | Metrics_text { text } ->
    Printf.sprintf "metrics (%d bytes)" (String.length text)
  | Traffic_report { epoch; flows; delivered; dropped } ->
    Printf.sprintf "traffic epoch=%d flows=%d delivered=%d dropped=%d" epoch
      flows delivered dropped

let encode_request (r : request) = Journal.Wal.frame (Marshal.to_string r [])
let encode_reply (r : reply) = Journal.Wal.frame (Marshal.to_string r [])

(* Decoding walks the checksummed frames first ({!Journal.Wal.scan_payloads})
   and only then lets Marshal near the payloads, with the same guard the
   WAL scan uses: a CRC collision or cross-build frame truncates the
   stream rather than raising. *)
let decode_with (of_payload : string -> 'a option) stream =
  let payloads, consumed = Journal.Wal.scan_payloads stream in
  let rec go acc used = function
    | [] -> (List.rev acc, consumed)
    | p :: rest -> (
      match of_payload p with
      | Some m -> go (m :: acc) (used + String.length p + 8) rest
      | None -> (List.rev acc, used))
  in
  go [] 0 payloads

let request_of_payload p =
  match (Marshal.from_string p 0 : request) with
  | r -> Some r
  | exception _ -> None

let reply_of_payload p =
  match (Marshal.from_string p 0 : reply) with
  | r -> Some r
  | exception _ -> None

let decode_requests s = decode_with request_of_payload s
let decode_replies s = decode_with reply_of_payload s

type frames = Frames of string list | Torn

(* Incremental sibling of [decode_requests] for non-blocking sessions: a
   session buffer grows by whatever [read] returned, which can end
   mid-frame.  A short tail is *not* an error — the frames so far are
   returned and the tail stays buffered for the next read.  Only an
   impossible length or a CRC mismatch is [Torn]: unlike the
   prefix-decode used on complete streams, a live session can
   distinguish "not yet arrived" from "never valid", and must kill the
   connection on the latter instead of silently eating its tail. *)
let take_frames buf =
  let data = Buffer.contents buf in
  let n = String.length data in
  let rec go acc off =
    if n - off < 8 then Ok (List.rev acc, off)
    else
      let len = Int32.to_int (String.get_int32_be data off) in
      if len < 0 || len > 1 lsl 24 then Error ()
      else if n - off < 8 + len then Ok (List.rev acc, off)
      else
        match Journal.Wal.unframe (String.sub data off (8 + len)) with
        | Some payload -> go (payload :: acc) (off + 8 + len)
        | None -> Error ()
  in
  match go [] 0 with
  | Error () -> Torn
  | Ok (payloads, consumed) ->
    let rest = String.sub data consumed (n - consumed) in
    Buffer.clear buf;
    Buffer.add_string buf rest;
    Frames payloads

let read_message ic =
  match really_input_string ic 8 with
  | exception End_of_file -> None
  | header -> (
    let len = Int32.to_int (String.get_int32_be header 0) in
    if len < 0 || len > 1 lsl 24 then None
    else
      match really_input_string ic len with
      | exception End_of_file -> None
      | payload -> Journal.Wal.unframe (header ^ payload))

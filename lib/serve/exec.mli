(** A fixed pool of worker domains with a {e deterministic} task→worker
    assignment — the shard executor under the daemon's round loop.

    [run] takes an array of thunks (one per shard) and executes task [i]
    on slot [i mod jobs]; slot 0 is the calling domain, slots
    1..jobs-1 are persistent spawned domains parked on a condition
    variable between rounds.  A slot holding several tasks keeps them
    {e all} in flight on lightweight threads of its domain: tasks are
    share-nothing by contract, and a task blocked in an fsync releases
    the runtime lock, so over-subscribed slots overlap their shards'
    commit waits (the device then batches more journal commits per
    flush) even on a single core.  The partition of work — and
    therefore every shard's execution stream — depends only on the
    task list and [jobs], never on scheduling, which is half of the
    equal-seeds/equal-signatures guarantee (the other half being that
    the tasks themselves are share-nothing).

    Exceptions do not short-circuit the round: every task runs to
    completion or to its own failure, and the first failure in index
    order is re-raised only after the barrier.  A simulated kill in one
    shard therefore leaves every other shard's batch fully processed —
    the same completion rule at [jobs = 1] (a plain in-order loop, no
    domain ever spawned) and at any higher [jobs], so crash/restart runs
    stay byte-identical across the whole [--jobs] range. *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] worker domains (none for [jobs = 1]).  Raises
    [Invalid_argument] for [jobs < 1]. *)

val jobs : t -> int

val run : t -> (unit -> 'a) array -> 'a array
(** Execute every task, task [i] on slot [i mod jobs] (a slot's tasks
    run concurrently on its threads), and return the results in task
    order.  Blocks until all tasks finish.  If any tasks raised, the
    first exception in task order is re-raised — after every other
    task has still run.  At [jobs = 1] this is a plain sequential
    index-order loop, no threads.  Raises [Invalid_argument] after
    {!stop}. *)

val stop : t -> unit
(** Join every worker domain.  Idempotent; the executor is unusable
    afterwards.  Call between rounds only — never concurrently with
    {!run}. *)

val stopped : t -> bool

(** One tenant region of the daemon: a journaled {!Runtime.Engine} plus
    the durable admission state in front of it.

    A shard owns two stores.  The {e journal} store is the engine's
    crash-safe WAL/snapshot pair ({!Journal.Journaled}).  The {e intake}
    store is an append-only log of admitted tickets: an event is acked
    ({!Wire.Accepted}) only after its [(ticket, tenant, op)] record is
    framed, appended and fsynced there — which is the whole no-lost-acks
    guarantee.  Processing then translates each ticket into a
    {!Runtime.Event} against the live network and drives it through the
    journaled engine.

    {b Determinism across crashes.}  Translation draws (ingress
    allocation, path choice, policy synthesis) come from a PRNG whose
    state rides the journal's client blob, captured {e after} drawing
    each event and marking its ticket done.  Recovery therefore splits
    the intake log exactly: tickets the restored blob marks done were
    journaled (the engine replay re-absorbs them); the rest re-translate
    from the restored PRNG state into byte-identical events.  A ticket
    whose translation fails (e.g. [Flow] from a disconnected tenant) is
    resolved as a {e quarantined ticket} — a pure function of the
    restored state, so a crash re-derives the same resolution.

    {b Bulkhead.}  Each tenant carries a circuit breaker.  Events that
    keep escalating the engine's degradation ladder (greedy/quarantine
    outcomes, failed verification) trip it open, after which the
    tenant's events are pinned to the cheap greedy rung (quarantine
    floor intact) until a cooldown of clean outcomes half-opens and then
    closes it.  The per-event rung restriction is persisted in the WAL
    ({!Journal.Wal.Ev_begin}), so replay degrades exactly like the
    original run.  Breaker steps depend on each event's {e report}, so
    the blob logged at [Ev_begin] lags by one step; {!recover} patches
    that step from the last replayed report (see
    {!Journal.Journaled.set_client}). *)

type config = {
  capacity : int;  (** uniform per-switch ACL budget of the shard's net *)
  trip_after : int;  (** consecutive escalations that open the breaker *)
  cooldown : int;  (** clean restricted events before half-open *)
  snapshot_every : int;  (** events between shard snapshots/compactions *)
  engine : Runtime.Engine.config;
}

val default_config : config
(** k=4 fat-tree, capacity 30, trip_after 3, cooldown 4,
    snapshot_every 8, a 5 s engine deadline. *)

(** The per-tenant circuit breaker, a pure state machine over event
    reports (exposed for direct unit testing; the shard drives it
    internally). *)
type breaker =
  | Closed of { strikes : int }
  | Open of { cooldown_left : int }
  | Half_open

val breaker_step : config -> breaker -> Runtime.Report.t -> breaker
(** One transition.  An {e escalated} report (greedy or quarantine rung,
    or failed verification) strikes a closed breaker — [trip_after]
    consecutive strikes open it — and re-opens a half-open one.  While
    open, only a quarantine rung or failed verification resets the
    cooldown; anything better counts it down to half-open. *)

val restriction : breaker -> Runtime.Report.rung list option
(** The solve-rung restriction an open breaker pins its tenant to. *)

val breaker_name : breaker -> string

type t

type stores = { journal : Journal.Store.t; intake : Journal.Store.t }

val create :
  ?config:config ->
  ?kill:(Journal.Journaled.kill_point -> unit) ->
  stores:stores ->
  seed:int ->
  id:int ->
  unit ->
  t
(** A fresh shard over an {e empty} network (no tenants, no rules):
    placement state grows as tenants connect.  Overwrites both stores.
    [seed] and [id] fix every future translation draw.  [kill] is the
    journal's crash-window hook (see {!Journal.Journaled}), the bench's
    lever for killing the daemon mid-update. *)

(** {1 Admission} *)

val admit : ?sync:bool -> t -> tenant:int -> op:Wire.op -> int
(** Log one admitted operation and return its ticket (a per-shard
    sequence starting at 1).  With [sync] (the default) the intake
    append is fsynced before returning — callers may ack immediately.
    With [~sync:false] the record is only {e staged} (group commit): the
    caller must not ack until a {!flush_intake} — or a {!snapshot},
    whose atomic snap slot carries the pending records — covers it.
    Queue bounds are the caller's job ({!Daemon}); the shard never
    sheds. *)

val flush_intake : t -> unit
(** Durability barrier for every staged intake append: one fsync,
    skipped when nothing is staged.  After it returns, every ticket
    {!admit}ted so far may be acked. *)

val staged_intake : t -> int
(** Admitted tickets whose intake record is not yet covered by a
    barrier (must be 0 whenever an ack is sent). *)

type intake_stats = { appends : int; fsyncs : int }

val intake_stats : t -> intake_stats
(** Lifetime intake-log appends and fsync barriers actually issued —
    the bench's fsyncs-per-event numerator/denominator. *)

val pending : t -> int
(** Admitted tickets not yet processed. *)

val pending_for : t -> tenant:int -> int

val resolved : t -> ticket:int -> bool
(** The ticket has been processed (applied or deterministically
    quarantined).  After a restart plus {!drain}, every ticket ever
    acked must be resolved — the no-lost-acks invariant. *)

(** {1 Processing} *)

type outcome =
  | Applied of { rung : Runtime.Report.rung; verified : bool; quarantined : bool }
  | Quarantined of { reason : string }
      (** translation failed deterministically; the network is untouched *)

type processed = { p_tenant : int; p_ticket : int; p_outcome : outcome }

type batch = (int * int * Wire.op) list
(** One round's selection for this shard, admission order. *)

val plan_round : t -> pool:Portfolio.Pool.t -> batch
(** Select this round's tickets: taken in admission order {e per
    tenant}, but a tenant refused a pool slot (global pressure or its
    per-tenant cap) is skipped {e as a whole} for the round — later
    tenants overtake it, its own later tickets never do.  Every slot
    acquired is released before returning.  Pure bookkeeping — nothing
    touches the engine or the stores, and planned tickets stay queued
    until {!execute_batch} reaches them (so a mid-batch intake
    compaction still sees them) — so the daemon plans all shards
    sequentially (deterministically) before executing in parallel. *)

val execute_batch : t -> batch -> processed list
(** Process a planned batch in order.  Touches only this shard's state
    and stores, so batches of {e distinct} shards may run on distinct
    domains concurrently; never run two batches of the same shard
    concurrently, and never concurrently with {!admit} on the same
    shard. *)

val process_round : t -> pool:Portfolio.Pool.t -> processed list
(** [execute_batch t (plan_round t ~pool)] — the sequential round. *)

val drain : t -> processed list
(** Process everything pending (unbounded rounds), then snapshot the
    engine journal and compact the intake log. *)

val snapshot : t -> unit
(** Snapshot the journal (post-report client blob included) and compact
    the intake log down to its pending suffix.  The intake compaction
    writes the pending records to the store's snapshot slot {e before}
    truncating the log, so a crash between the two duplicates records
    (deduped on recovery) rather than losing them. *)

(** {1 Recovery} *)

type recovered = {
  shard : t;
  replayed : int;  (** events the journal re-executed *)
  reissued : int;  (** acked tickets rebuilt into the pending queue *)
  divergences : string list;  (** non-empty means state corruption *)
}

val recover :
  ?config:config ->
  ?kill:(Journal.Journaled.kill_point -> unit) ->
  stores:stores ->
  seed:int ->
  id:int ->
  unit ->
  (recovered, string) result
(** Rebuild the shard after a crash: recover the journaled engine,
    restore the translation blob (patching the one possibly-missing
    breaker step from the last replayed report), and re-queue every
    acked-but-unprocessed intake ticket in admission order.  [config]
    and [seed] must match the crashed process.  Ends with {!snapshot},
    so recovering twice is idempotent. *)

(** {1 Inspection} *)

val traffic_walk :
  t ->
  seed:int ->
  epoch:int ->
  packets:int ->
  alpha:float ->
  drift:float ->
  probes:int ->
  int * int * int
(** [(flows, delivered, dropped)] of walking one {!Traffic.Zipf} epoch's
    probe packets over the shard's live tables (traffic-weighted; the
    daemon's [Traffic_tick] wire op).  Stateless: a pure function of the
    parameters and the live placement, so equal requests to a restarted
    shard get equal answers.  Malformed parameters are clamped, never
    raised on. *)

val signature : t -> string
(** Digest of the shard's complete observable state: live tables,
    quarantine set, dead infrastructure, entry count, event count.
    Byte-identical between a crashed-and-recovered run and an uncrashed
    one — the bench's zero-divergence gate. *)

val tenant_signature : t -> tenant:int -> string
(** Digest of one tenant's view: liveness, assigned ingress, its policy
    and paths in the last-good placement, quarantine membership. *)

val tenants : t -> int list
(** Tenants this shard has ever seen, ascending. *)

val breaker_state : t -> tenant:int -> string
(** ["closed"], ["open"] or ["half-open"] (unknown tenants are
    closed). *)

val seq : t -> int
(** Events durably absorbed by the journaled engine. *)

type config = {
  shards : int;
  queue_limit : int;
  tenant_queue_limit : int;
  round_slots : int;
  tenant_round_cap : int;
  tenant_series_cap : int;
  shard : Shard.config;
  seed : int;
}

let default_config =
  {
    shards = 4;
    queue_limit = 64;
    tenant_queue_limit = 8;
    round_slots = 8;
    tenant_round_cap = 2;
    tenant_series_cap = 32;
    shard = Shard.default_config;
    seed = 1;
  }

let m_accepted =
  Telemetry.Metrics.counter ~help:"events admitted (durably acked)"
    "sdnplace_serve_accepted_total"

let m_applied =
  Telemetry.Metrics.counter ~help:"acked events applied to the network"
    "sdnplace_serve_applied_total"

let m_quarantined =
  Telemetry.Metrics.counter ~help:"acked events resolved as quarantined tickets"
    "sdnplace_serve_quarantined_tickets_total"

let m_shed name =
  Telemetry.Metrics.counter ~help:"overload rejections by scope"
    ~labels:[ ("scope", name) ]
    "sdnplace_serve_shed_total"

let () = List.iter (fun s -> ignore (m_shed s)) [ "global"; "tenant" ]

(* Per-tenant traffic attribution: an unbounded label space by nature,
   which is exactly what the registry's label cap exists for — tenants
   past the cap aggregate into the _overflow series instead of growing
   the registry without bound. *)
let m_tenant_events tenant =
  Telemetry.Metrics.counter ~help:"admitted events by tenant"
    ~labels:[ ("tenant", string_of_int tenant) ]
    "sdnplace_serve_tenant_events_total"

type t = {
  config : config;
  shards : Shard.t array;
  pool : Portfolio.Pool.t;
  mutable draining : bool;
  mutable accepted : int;
  mutable applied : int;
  mutable quarantined : int;
  mutable shed : int;
}

let make_pool config =
  Portfolio.Pool.create ~slots:(max 1 config.round_slots)
    ~per_key_cap:(max 1 config.tenant_round_cap)

let create ?(config = default_config) ?kill ~stores () =
  Telemetry.Metrics.set_label_cap (Some config.tenant_series_cap);
  let shards =
    Array.init config.shards (fun i ->
        Shard.create ~config:config.shard ?kill ~stores:(stores i)
          ~seed:config.seed ~id:i ())
  in
  {
    config;
    shards;
    pool = make_pool config;
    draining = false;
    accepted = 0;
    applied = 0;
    quarantined = 0;
    shed = 0;
  }

type started = {
  daemon : t;
  recovered_shards : int;
  replayed : int;
  reissued : int;
  divergences : string list;
}

let start ?(config = default_config) ?kill ~stores () =
  Telemetry.Metrics.set_label_cap (Some config.tenant_series_cap);
  let recovered_shards = ref 0 in
  let replayed = ref 0 in
  let reissued = ref 0 in
  let divergences = ref [] in
  let shards =
    Array.init config.shards (fun i ->
        let st = stores i in
        match
          Shard.recover ~config:config.shard ?kill ~stores:st ~seed:config.seed
            ~id:i ()
        with
        | Ok r ->
          incr recovered_shards;
          replayed := !replayed + r.Shard.replayed;
          reissued := !reissued + r.Shard.reissued;
          divergences := !divergences @ r.Shard.divergences;
          r.Shard.shard
        | Error _ ->
          Shard.create ~config:config.shard ?kill ~stores:st ~seed:config.seed
            ~id:i ())
  in
  let daemon =
    {
      config;
      shards;
      pool = make_pool config;
      draining = false;
      accepted = 0;
      applied = 0;
      quarantined = 0;
      shed = 0;
    }
  in
  {
    daemon;
    recovered_shards = !recovered_shards;
    replayed = !replayed;
    reissued = !reissued;
    divergences = !divergences;
  }

let shard_of t tenant = t.shards.(tenant mod Array.length t.shards)

let pending t = Array.fold_left (fun acc s -> acc + Shard.pending s) 0 t.shards

let resolved t ~tenant ~ticket = Shard.resolved (shard_of t tenant) ~ticket

let shed t = t.shed

let draining t = t.draining

let known_tenants t =
  List.sort_uniq compare
    (Array.to_list t.shards |> List.concat_map Shard.tenants)

let stats_reply t =
  Wire.Stats_reply
    {
      tenants = List.length (known_tenants t);
      accepted = t.accepted;
      applied = t.applied;
      quarantined = t.quarantined;
      shed = t.shed;
      pending = pending t;
    }

let reply_of_processed (p : Shard.processed) =
  match p.Shard.p_outcome with
  | Shard.Applied { rung; verified; quarantined } ->
    Wire.Applied
      { tenant = p.Shard.p_tenant; ticket = p.Shard.p_ticket; rung; verified;
        quarantined }
  | Shard.Quarantined { reason } ->
    Wire.Quarantined_ticket
      { tenant = p.Shard.p_tenant; ticket = p.Shard.p_ticket; reason }

let account t (p : Shard.processed) =
  (match p.Shard.p_outcome with
  | Shard.Applied _ ->
    t.applied <- t.applied + 1;
    Telemetry.Metrics.incr m_applied
  | Shard.Quarantined _ ->
    t.quarantined <- t.quarantined + 1;
    Telemetry.Metrics.incr m_quarantined);
  reply_of_processed p

let tick t =
  Portfolio.Pool.reset t.pool;
  Array.to_list t.shards
  |> List.concat_map (fun s -> Shard.process_round s ~pool:t.pool)
  |> List.map (account t)

let drain t =
  t.draining <- true;
  let outcomes =
    Array.to_list t.shards
    |> List.concat_map (fun s -> List.map (account t) (Shard.drain s))
  in
  outcomes @ [ Wire.Drained { processed = t.applied + t.quarantined } ]

let submit t request =
  match request with
  | Wire.Drain -> drain t
  | Wire.Stats -> [ stats_reply t ]
  | Wire.Metrics_dump ->
    [ Wire.Metrics_text { text = Telemetry.Metrics.render () } ]
  | Wire.Traffic_tick { seed; epoch; packets; alpha; drift; probes } ->
    (* each shard walks its own flow universe on a shard-mixed seed;
       the reply aggregates — read-only, so allowed even while draining *)
    let flows = ref 0 and delivered = ref 0 and dropped = ref 0 in
    Array.iteri
      (fun i s ->
        let f, d, x =
          Shard.traffic_walk s ~seed:(seed lxor ((i * 131) + 17)) ~epoch
            ~packets ~alpha ~drift ~probes
        in
        flows := !flows + f;
        delivered := !delivered + d;
        dropped := !dropped + x)
      t.shards;
    [
      Wire.Traffic_report
        {
          epoch;
          flows = !flows;
          delivered = !delivered;
          dropped = !dropped;
        };
    ]
  | Wire.Submit { tenant; op } ->
    if t.draining then [ Wire.Rejected { reason = "draining" } ]
    else if tenant < 0 then [ Wire.Rejected { reason = "negative tenant id" } ]
    else begin
      let queued = pending t in
      let s = shard_of t tenant in
      let tenant_queued = Shard.pending_for s ~tenant in
      if queued >= t.config.queue_limit then begin
        t.shed <- t.shed + 1;
        Telemetry.Metrics.incr (m_shed "global");
        [
          Wire.Rejected_overload
            { tenant; scope = Wire.Global; queued; limit = t.config.queue_limit };
        ]
      end
      else if tenant_queued >= t.config.tenant_queue_limit then begin
        t.shed <- t.shed + 1;
        Telemetry.Metrics.incr (m_shed "tenant");
        [
          Wire.Rejected_overload
            {
              tenant;
              scope = Wire.Tenant;
              queued = tenant_queued;
              limit = t.config.tenant_queue_limit;
            };
        ]
      end
      else begin
        let ticket = Shard.admit s ~tenant ~op in
        t.accepted <- t.accepted + 1;
        Telemetry.Metrics.incr m_accepted;
        Telemetry.Metrics.incr (m_tenant_events tenant);
        [ Wire.Accepted { tenant; ticket } ]
      end
    end

let signature t =
  Digest.to_hex
    (Digest.string
       (String.concat "|" (Array.to_list (Array.map Shard.signature t.shards))))

let shard_signatures t = Array.to_list (Array.map Shard.signature t.shards)

let tenant_signatures t =
  List.map
    (fun tenant ->
      (tenant, Shard.tenant_signature (shard_of t tenant) ~tenant))
    (known_tenants t)

type session = { drained : bool; requests : int }

let serve_channels t ic oc =
  let write reply =
    output_string oc (Wire.encode_reply reply);
    flush oc
  in
  let requests = ref 0 in
  let rec loop () =
    match Wire.read_message ic with
    | None ->
      (* EOF or a torn frame: the stream is gone, but every acked event
         must still land — same graceful drain as an explicit Drain,
         with nobody left to read the replies. *)
      if not t.draining then ignore (drain t);
      { drained = false; requests = !requests }
    | Some payload -> (
      incr requests;
      match (Marshal.from_string payload 0 : Wire.request) with
      | exception _ ->
        write (Wire.Rejected { reason = "malformed request" });
        loop ()
      | Wire.Drain ->
        List.iter write (drain t);
        { drained = true; requests = !requests }
      | req ->
        List.iter write (submit t req);
        (* One fair round after every request keeps outcome latency
           bounded by the request rate and the whole session
           deterministic. *)
        List.iter write (tick t);
        loop ())
  in
  loop ()

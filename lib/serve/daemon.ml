type config = {
  shards : int;
  queue_limit : int;
  tenant_queue_limit : int;
  round_slots : int;
  tenant_round_cap : int;
  tenant_series_cap : int;
  jobs : int;
  batch_fsync : int;
  shard : Shard.config;
  seed : int;
}

let default_config =
  {
    shards = 4;
    queue_limit = 64;
    tenant_queue_limit = 8;
    round_slots = 8;
    tenant_round_cap = 2;
    tenant_series_cap = 32;
    jobs = 1;
    batch_fsync = 1;
    shard = Shard.default_config;
    seed = 1;
  }

let m_accepted =
  Telemetry.Metrics.counter ~help:"events admitted (durably acked)"
    "sdnplace_serve_accepted_total"

let m_applied =
  Telemetry.Metrics.counter ~help:"acked events applied to the network"
    "sdnplace_serve_applied_total"

let m_quarantined =
  Telemetry.Metrics.counter ~help:"acked events resolved as quarantined tickets"
    "sdnplace_serve_quarantined_tickets_total"

let m_intake_fsyncs =
  Telemetry.Metrics.counter
    ~help:"intake-log durability barriers issued (group commit batches)"
    "sdnplace_serve_intake_fsyncs_total"

let m_shed name =
  Telemetry.Metrics.counter ~help:"overload rejections by scope"
    ~labels:[ ("scope", name) ]
    "sdnplace_serve_shed_total"

let () = List.iter (fun s -> ignore (m_shed s)) [ "global"; "tenant" ]

(* Per-tenant traffic attribution: an unbounded label space by nature,
   which is exactly what the registry's label cap exists for — tenants
   past the cap aggregate into the _overflow series instead of growing
   the registry without bound. *)
let m_tenant_events tenant =
  Telemetry.Metrics.counter ~help:"admitted events by tenant"
    ~labels:[ ("tenant", string_of_int tenant) ]
    "sdnplace_serve_tenant_events_total"

type t = {
  config : config;
  shards : Shard.t array;
  pool : Portfolio.Pool.t;
  exec : Exec.t;
  mutable draining : bool;
  (* Domain-safe counters: the merge step runs on the calling domain,
     but shard batches execute on pool domains, and nothing in the type
     system stops a future caller from reading stats concurrently with a
     round — Atomic.t makes every individual read untearable and every
     increment lock-free.  Stats_reply assembly reads each cell once;
     the reply is a consistent-enough snapshot because all four cells
     are only incremented between rounds on the calling domain. *)
  accepted : int Atomic.t;
  applied : int Atomic.t;
  quarantined : int Atomic.t;
  shed_count : int Atomic.t;
  (* Group commit: acks staged since the last covering fsync, admission
     order.  Each entry remembers which shard's intake log carries its
     record, so [flush] can fsync exactly the dirty shards. *)
  mutable staged_acks : Wire.reply list;  (* reversed *)
  mutable staged_count : int;
}

let make_pool config =
  Portfolio.Pool.create ~slots:(max 1 config.round_slots)
    ~per_key_cap:(max 1 config.tenant_round_cap)

let build config shards =
  {
    config;
    shards;
    pool = make_pool config;
    exec = Exec.create ~jobs:(max 1 config.jobs);
    draining = false;
    accepted = Atomic.make 0;
    applied = Atomic.make 0;
    quarantined = Atomic.make 0;
    shed_count = Atomic.make 0;
    staged_acks = [];
    staged_count = 0;
  }

let create ?(config = default_config) ?kill ~stores () =
  Telemetry.Metrics.set_label_cap (Some config.tenant_series_cap);
  let shards =
    Array.init config.shards (fun i ->
        Shard.create ~config:config.shard
          ?kill:(Option.map (fun k -> k ~shard:i) kill)
          ~stores:(stores i) ~seed:config.seed ~id:i ())
  in
  build config shards

type started = {
  daemon : t;
  recovered_shards : int;
  replayed : int;
  reissued : int;
  divergences : string list;
}

let start ?(config = default_config) ?kill ~stores () =
  Telemetry.Metrics.set_label_cap (Some config.tenant_series_cap);
  let recovered_shards = ref 0 in
  let replayed = ref 0 in
  let reissued = ref 0 in
  let divergences = ref [] in
  let shards =
    Array.init config.shards (fun i ->
        let st = stores i in
        let kill = Option.map (fun k -> k ~shard:i) kill in
        match
          Shard.recover ~config:config.shard ?kill ~stores:st ~seed:config.seed
            ~id:i ()
        with
        | Ok r ->
          incr recovered_shards;
          replayed := !replayed + r.Shard.replayed;
          reissued := !reissued + r.Shard.reissued;
          divergences := !divergences @ r.Shard.divergences;
          r.Shard.shard
        | Error _ ->
          Shard.create ~config:config.shard ?kill ~stores:st ~seed:config.seed
            ~id:i ())
  in
  {
    daemon = build config shards;
    recovered_shards = !recovered_shards;
    replayed = !replayed;
    reissued = !reissued;
    divergences = !divergences;
  }

let shutdown t = if not (Exec.stopped t.exec) then Exec.stop t.exec

let shard_of t tenant = t.shards.(tenant mod Array.length t.shards)

let pending t = Array.fold_left (fun acc s -> acc + Shard.pending s) 0 t.shards

let resolved t ~tenant ~ticket = Shard.resolved (shard_of t tenant) ~ticket

let shed t = Atomic.get t.shed_count

let draining t = t.draining

let known_tenants t =
  List.sort_uniq compare
    (Array.to_list t.shards |> List.concat_map Shard.tenants)

let stats_reply t =
  Wire.Stats_reply
    {
      tenants = List.length (known_tenants t);
      accepted = Atomic.get t.accepted;
      applied = Atomic.get t.applied;
      quarantined = Atomic.get t.quarantined;
      shed = Atomic.get t.shed_count;
      pending = pending t;
    }

type intake_stats = { appends : int; fsyncs : int }

let intake_stats t =
  Array.fold_left
    (fun acc s ->
      let st = Shard.intake_stats s in
      {
        appends = acc.appends + st.Shard.appends;
        fsyncs = acc.fsyncs + st.Shard.fsyncs;
      })
    { appends = 0; fsyncs = 0 }
    t.shards

let reply_of_processed (p : Shard.processed) =
  match p.Shard.p_outcome with
  | Shard.Applied { rung; verified; quarantined } ->
    Wire.Applied
      { tenant = p.Shard.p_tenant; ticket = p.Shard.p_ticket; rung; verified;
        quarantined }
  | Shard.Quarantined { reason } ->
    Wire.Quarantined_ticket
      { tenant = p.Shard.p_tenant; ticket = p.Shard.p_ticket; reason }

let account t (p : Shard.processed) =
  (match p.Shard.p_outcome with
  | Shard.Applied _ ->
    Atomic.incr t.applied;
    Telemetry.Metrics.incr m_applied
  | Shard.Quarantined _ ->
    Atomic.incr t.quarantined;
    Telemetry.Metrics.incr m_quarantined);
  reply_of_processed p

(* Group commit: one durability barrier per dirty shard covers every ack
   staged since the last flush; only then are the Accepted replies
   released, in admission order.  (Shards whose staged records were
   already made durable by an intake compaction skip the fsync — see
   Shard.flush_intake.) *)
let flush t =
  if t.staged_count = 0 then []
  else begin
    let dirty =
      Array.to_list t.shards |> List.filter (fun s -> Shard.staged_intake s > 0)
    in
    (* The per-shard barriers are independent fsyncs on distinct
       stores: run them through the executor so their commit waits
       overlap exactly like batch execution (plain loop at jobs = 1).
       Order is irrelevant — each barrier touches only its own shard —
       so this changes nothing observable. *)
    (match dirty with
    | [] -> ()
    | [ s ] -> Shard.flush_intake s
    | _ ->
        ignore
          (Exec.run t.exec
             (Array.of_list (List.map (fun s () -> Shard.flush_intake s) dirty))));
    List.iter (fun _ -> Telemetry.Metrics.incr m_intake_fsyncs) dirty;
    let acks = List.rev t.staged_acks in
    t.staged_acks <- [];
    t.staged_count <- 0;
    acks
  end

(* One scheduling round: plan every shard sequentially (the pool walk is
   the only cross-shard coupling, so selection is identical at any
   [jobs]), execute the per-shard batches on the domain pool, merge in
   shard order.  The merge — accounting included — happens on the
   calling domain, so the reply stream is byte-identical at any [jobs].
   A batch that dies mid-way (the bench's simulated kill) still lets
   every other batch complete before the exception surfaces, at any
   [jobs] (see Exec). *)
let run_round t ~pool =
  let batches = Array.map (fun s -> Shard.plan_round s ~pool) t.shards in
  let nonempty = Array.fold_left (fun n b -> if b = [] then n else n + 1) 0 batches in
  let results =
    if nonempty = 0 then Array.map (fun _ -> []) batches
    else if nonempty = 1 then
      (* Inline fast path: with a single non-empty batch there is
         nothing else for the completion rule to complete, so an
         exception propagating early is observably identical. *)
      Array.mapi (fun i s -> Shard.execute_batch s batches.(i)) t.shards
    else
      Exec.run t.exec
        (Array.mapi (fun i s () -> Shard.execute_batch s batches.(i)) t.shards)
  in
  Array.to_list results |> List.concat |> List.map (account t)

let tick t =
  (* Nothing may be processed before its ack's covering barrier: an
     event the journal absorbs but the intake never recorded would make
     the journaled state depend on an admission the client cannot know
     happened. *)
  let acks = flush t in
  Portfolio.Pool.reset t.pool;
  acks @ run_round t ~pool:t.pool

let drain t =
  t.draining <- true;
  let acks = flush t in
  let outcomes = ref [] in
  while pending t > 0 do
    let n = max 1 (pending t) in
    let pool = Portfolio.Pool.create ~slots:n ~per_key_cap:n in
    outcomes := !outcomes @ run_round t ~pool
  done;
  Array.iter Shard.snapshot t.shards;
  acks @ !outcomes
  @ [ Wire.Drained { processed = Atomic.get t.applied + Atomic.get t.quarantined } ]

let submit t request =
  match request with
  | Wire.Drain -> drain t
  | Wire.Stats -> [ stats_reply t ]
  | Wire.Metrics_dump ->
    [ Wire.Metrics_text { text = Telemetry.Metrics.render () } ]
  | Wire.Traffic_tick { seed; epoch; packets; alpha; drift; probes } ->
    (* each shard walks its own flow universe on a shard-mixed seed;
       the reply aggregates — read-only, so allowed even while draining *)
    let flows = ref 0 and delivered = ref 0 and dropped = ref 0 in
    Array.iteri
      (fun i s ->
        let f, d, x =
          Shard.traffic_walk s ~seed:(seed lxor ((i * 131) + 17)) ~epoch
            ~packets ~alpha ~drift ~probes
        in
        flows := !flows + f;
        delivered := !delivered + d;
        dropped := !dropped + x)
      t.shards;
    [
      Wire.Traffic_report
        {
          epoch;
          flows = !flows;
          delivered = !delivered;
          dropped = !dropped;
        };
    ]
  | Wire.Submit { tenant; op } ->
    if t.draining then [ Wire.Rejected { reason = "draining" } ]
    else if tenant < 0 then [ Wire.Rejected { reason = "negative tenant id" } ]
    else begin
      let queued = pending t in
      let s = shard_of t tenant in
      let tenant_queued = Shard.pending_for s ~tenant in
      if queued >= t.config.queue_limit then begin
        Atomic.incr t.shed_count;
        Telemetry.Metrics.incr (m_shed "global");
        [
          Wire.Rejected_overload
            { tenant; scope = Wire.Global; queued; limit = t.config.queue_limit };
        ]
      end
      else if tenant_queued >= t.config.tenant_queue_limit then begin
        Atomic.incr t.shed_count;
        Telemetry.Metrics.incr (m_shed "tenant");
        [
          Wire.Rejected_overload
            {
              tenant;
              scope = Wire.Tenant;
              queued = tenant_queued;
              limit = t.config.tenant_queue_limit;
            };
        ]
      end
      else begin
        let sync = t.config.batch_fsync <= 1 in
        let ticket = Shard.admit ~sync s ~tenant ~op in
        Atomic.incr t.accepted;
        Telemetry.Metrics.incr m_accepted;
        Telemetry.Metrics.incr (m_tenant_events tenant);
        let ack = Wire.Accepted { tenant; ticket } in
        if sync then [ ack ]
        else begin
          t.staged_acks <- ack :: t.staged_acks;
          t.staged_count <- t.staged_count + 1;
          (* Bounded batch: the covering fsync is issued at the batch
             cap even if the caller never flushes explicitly. *)
          if t.staged_count >= t.config.batch_fsync then flush t else []
        end
      end
    end

let signature t =
  Digest.to_hex
    (Digest.string
       (String.concat "|" (Array.to_list (Array.map Shard.signature t.shards))))

let shard_signatures t = Array.to_list (Array.map Shard.signature t.shards)

let tenant_signatures t =
  List.map
    (fun tenant ->
      (tenant, Shard.tenant_signature (shard_of t tenant) ~tenant))
    (known_tenants t)

type session = { drained : bool; requests : int }

let serve_channels t ic oc =
  let write reply =
    output_string oc (Wire.encode_reply reply);
    Stdlib.flush oc
  in
  let requests = ref 0 in
  let rec loop () =
    match Wire.read_message ic with
    | None ->
      (* EOF or a torn frame: the stream is gone, but every acked event
         must still land — same graceful drain as an explicit Drain,
         with nobody left to read the replies. *)
      if not t.draining then ignore (drain t);
      { drained = false; requests = !requests }
    | Some payload -> (
      incr requests;
      match (Marshal.from_string payload 0 : Wire.request) with
      | exception _ ->
        write (Wire.Rejected { reason = "malformed request" });
        loop ()
      | Wire.Drain ->
        List.iter write (drain t);
        { drained = true; requests = !requests }
      | req ->
        (* A synchronous session acks every request before the next one
           arrives, so a staged ack is flushed right away — group commit
           degenerates to a batch of one here; the batching win needs
           the multi-session loop (or an in-process caller driving
           submit/flush/tick directly). *)
        List.iter write (submit t req);
        List.iter write (flush t);
        (* One fair round after every request keeps outcome latency
           bounded by the request rate and the whole session
           deterministic. *)
        List.iter write (tick t);
        loop ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Multi-session accept loop                                           *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable alive : bool;
}

type served = { sessions : int; total_requests : int; drain_requested : bool }

let write_fd_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let serve_sessions t ~listen ?(max_sessions = 4) () =
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  let next_id = ref 0 in
  let served = ref 0 in
  let total_requests = ref 0 in
  let drain_requested = ref false in
  let finished = ref false in
  (* Replies that name a tenant route to the session that last submitted
     for that tenant — outcomes can surface rounds after the submit, on
     a later poll cycle.  Tenant-less replies answer the requesting
     session; Drained broadcasts. *)
  let tenant_session : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let send sid reply =
    match Hashtbl.find_opt conns sid with
    | Some c when c.alive -> (
      try write_fd_all c.fd (Wire.encode_reply reply)
      with Unix.Unix_error _ -> c.alive <- false)
    | _ -> ()
  in
  let broadcast reply =
    Hashtbl.iter (fun sid _ -> send sid reply) conns
  in
  let route ~from reply =
    match reply with
    | Wire.Accepted { tenant; _ }
    | Wire.Rejected_overload { tenant; _ }
    | Wire.Applied { tenant; _ }
    | Wire.Quarantined_ticket { tenant; _ } -> (
      match Hashtbl.find_opt tenant_session tenant with
      | Some sid -> send sid reply
      | None -> send from reply)
    | Wire.Drained _ -> broadcast reply
    | Wire.Rejected _ | Wire.Stats_reply _ | Wire.Metrics_text _
    | Wire.Traffic_report _ ->
      send from reply
  in
  let close sid =
    match Hashtbl.find_opt conns sid with
    | None -> ()
    | Some c ->
      c.alive <- false;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      Hashtbl.remove conns sid
  in
  let handle_request sid req =
    incr total_requests;
    match req with
    | Wire.Drain -> drain_requested := true
    | Wire.Submit { tenant; _ } when tenant >= 0 ->
      Hashtbl.replace tenant_session tenant sid;
      List.iter (route ~from:sid) (submit t req)
    | req -> List.iter (route ~from:sid) (submit t req)
  in
  let read_session sid =
    match Hashtbl.find_opt conns sid with
    | None -> ()
    | Some c -> (
      let chunk = Bytes.create 65536 in
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ -> close sid
      | 0 -> close sid
      | n -> (
        Buffer.add_subbytes c.inbuf chunk 0 n;
        match Wire.take_frames c.inbuf with
        | Wire.Frames payloads ->
          List.iter
            (fun p ->
              match (Marshal.from_string p 0 : Wire.request) with
              | exception _ -> send sid (Wire.Rejected { reason = "malformed request" })
              | req -> handle_request sid req)
            payloads
        | Wire.Torn ->
          (* A corrupt frame poisons the whole stream — same contract as
             the synchronous session: the connection is dropped; its
             acked events still land via the shared drain-on-exit. *)
          close sid))
  in
  while not !finished do
    let accepting = Hashtbl.length conns < max_sessions && not !drain_requested in
    let watch =
      (if accepting then [ listen ] else [])
      @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) conns []
    in
    let timeout = if pending t > 0 then 0.0 else -1.0 in
    let readable, _, _ =
      try Unix.select watch [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if accepting && List.mem listen readable then begin
      match Unix.accept listen with
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        let sid = !next_id in
        incr next_id;
        incr served;
        Hashtbl.replace conns sid { fd; inbuf = Buffer.create 4096; alive = true }
    end;
    (* Poll cycle: pull everything that arrived, then pay one covering
       fsync per dirty shard for the whole batch (group commit), release
       the acks, and run one fair scheduling round. *)
    let sids = List.sort compare (Hashtbl.fold (fun sid _ acc -> sid :: acc) conns []) in
    List.iter
      (fun sid ->
        match Hashtbl.find_opt conns sid with
        | Some c when List.mem c.fd readable -> read_session sid
        | _ -> ())
      sids;
    List.iter (route ~from:0) (flush t);
    if !drain_requested then begin
      List.iter (route ~from:0) (drain t);
      List.iter close (List.sort compare (Hashtbl.fold (fun sid _ acc -> sid :: acc) conns []));
      finished := true
    end
    else begin
      if pending t > 0 then List.iter (route ~from:0) (tick t);
      if Hashtbl.length conns = 0 && !served > 0 then begin
        (* Last client gone: same graceful drain as a torn single
           session — every acked event processed, every shard
           snapshotted, with nobody left to read the outcomes. *)
        if not t.draining then ignore (drain t);
        finished := true
      end
    end
  done;
  {
    sessions = !served;
    total_requests = !total_requests;
    drain_requested = !drain_requested;
  }

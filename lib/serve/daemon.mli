(** The multi-tenant placement daemon: admission control, fair
    scheduling and graceful drain over a set of {!Shard}s.

    Tenants are partitioned onto shards by [tenant mod shards]; each
    shard is an independently journaled region, so one region's crash
    recovery or quarantine storm never touches another's state.  The
    daemon in front enforces the {b robustness contract}:

    - {e bounded admission}: a global pending cap and a per-tenant cap;
      an event over either bound gets a typed
      {!Wire.Rejected_overload} naming the bound — acked events are
      never shed, shed events are never silent;
    - {e bulkhead scheduling}: each round runs through a
      {!Portfolio.Pool} with global slots and a per-tenant cap, so a
      flooding tenant saturates its own allowance while others keep
      their latency;
    - {e graceful drain}: stop admitting, process everything acked,
      snapshot every shard;
    - {e crash-resume}: {!start} recovers every shard that has a durable
      snapshot and re-queues acked-but-unprocessed tickets.

    {b Parallel rounds.}  Each scheduling round splits into a
    sequential {e plan} (per-shard ticket selection through the shared
    pool, shard order — the only cross-shard coupling), a parallel
    {e execute} (each shard's batch on a fixed {!Exec} domain pool,
    share-nothing), and a sequential {e merge} (accounting and replies,
    shard order, on the calling domain).  The reply stream and every
    signature are therefore a function of the request sequence and the
    seed alone — byte-identical at any [jobs], which is what the bench's
    equal-seeds/equal-signatures gate checks across the [--jobs] range.

    {b Group commit.}  With [batch_fsync > 1] admission {e stages}
    intake records and their [Accepted] acks; one covering fsync per
    dirty shard is paid at {!flush} (issued automatically by {!tick},
    {!drain}, and whenever the staged count reaches [batch_fsync]), and
    only then are the acks released — an ack still always means "an
    fsync covered this record", there are just fewer fsyncs than acks.

    The daemon's control loop is single-threaded (admission, planning
    and merging all happen on the calling domain); only shard batch
    execution fans out.  Counters are {!Atomic} so any stats read is
    untearable regardless of which domain asks. *)

type config = {
  shards : int;
  queue_limit : int;  (** daemon-wide pending-ticket cap *)
  tenant_queue_limit : int;  (** per-tenant pending-ticket cap *)
  round_slots : int;  (** tickets processed per scheduling round *)
  tenant_round_cap : int;  (** per-tenant tickets per round *)
  tenant_series_cap : int;
      (** bound on per-tenant labeled telemetry series
          ({!Telemetry.Metrics.set_label_cap}) *)
  jobs : int;
      (** worker domains for batch execution (1 = fully sequential;
          results are byte-identical either way) *)
  batch_fsync : int;
      (** acks staged per covering intake fsync (1 = sync every
          admission, the pre-group-commit behaviour) *)
  shard : Shard.config;
  seed : int;
}

val default_config : config
(** 4 shards, queue 64 (8/tenant), 8 slots per round (2/tenant),
    32 labeled tenant series, [jobs = 1], [batch_fsync = 1]. *)

type t

val create :
  ?config:config ->
  ?kill:(shard:int -> Journal.Journaled.kill_point -> unit) ->
  stores:(int -> Shard.stores) ->
  unit ->
  t
(** Boot fresh shards ([stores i] supplies shard [i]'s journal and
    intake stores — memory stores in tests, per-shard directories under
    the CLI).  [kill] is threaded to every shard's journal (the bench's
    mid-update crash lever), now {e per shard}: kill plans must count
    per-shard kill points, because under [jobs > 1] the interleaving of
    different shards' journal writes is scheduling-dependent — only each
    shard's own stream is deterministic. *)

type started = {
  daemon : t;
  recovered_shards : int;  (** shards rebuilt from a durable snapshot *)
  replayed : int;  (** journaled events re-executed across shards *)
  reissued : int;  (** acked tickets re-queued across shards *)
  divergences : string list;  (** recovery cross-check failures *)
}

val start :
  ?config:config ->
  ?kill:(shard:int -> Journal.Journaled.kill_point -> unit) ->
  stores:(int -> Shard.stores) ->
  unit ->
  started
(** {!create} or crash-resume, per shard: a shard with a durable
    snapshot is {!Shard.recover}ed, one without is created fresh.
    [config.seed] must match the crashed process. *)

val shutdown : t -> unit
(** Join the executor's worker domains.  Idempotent.  Call when
    abandoning a daemon without draining it (the bench's simulated
    crashes) — leaked domains accumulate across restarts and OCaml caps
    live domains at ~128.  The daemon must not {!tick}/{!drain} after
    shutdown if [jobs > 1]. *)

val submit : t -> Wire.request -> Wire.reply list
(** Handle one request.  [Submit] returns exactly one admission reply
    ([Accepted] / [Rejected_overload] / [Rejected]) when it can — under
    group commit ([batch_fsync > 1]) an admission that doesn't fill the
    batch returns [[]] and its [Accepted] ack is released by the next
    {!flush}/{!tick}/{!drain}, in admission order.  [Drain] processes
    everything and returns [Drained]; [Stats] returns [Stats_reply].
    Processing outcomes for accepted events arrive from {!tick}. *)

val flush : t -> Wire.reply list
(** Group-commit barrier: one covering fsync per dirty shard, then the
    staged [Accepted] acks in admission order.  [[]] when nothing is
    staged (no fsync paid). *)

val tick : t -> Wire.reply list
(** {!flush}, then run one fair scheduling round across all shards
    (plan sequentially, execute on the domain pool, merge in shard
    order).  Returns the released acks followed by the outcome replies
    ([Applied] / [Quarantined_ticket]).  Nothing is processed before
    its ack's covering barrier. *)

val drain : t -> Wire.reply list
(** Stop admitting, {!flush}, process every pending ticket (unbounded
    rounds on the domain pool), snapshot every shard.  Returns released
    acks, outcome replies, then [Drained]. *)

val pending : t -> int

val resolved : t -> tenant:int -> ticket:int -> bool
(** The acked ticket has been processed (applied or deterministically
    quarantined) — the no-lost-acks invariant's probe. *)

val shed : t -> int
(** Overload rejections issued so far (all of them typed). *)

val draining : t -> bool

val stats_reply : t -> Wire.reply
(** Untearable: each counter is a single {!Atomic} read; counters only
    move between rounds on the control domain, so the reply is a
    consistent snapshot. *)

type intake_stats = { appends : int; fsyncs : int }

val intake_stats : t -> intake_stats
(** Lifetime intake appends and fsync barriers summed over shards — the
    bench's fsyncs-per-event ratio ([batch_fsync = 1] pins it at 1). *)

val signature : t -> string
(** Digest over every shard's {!Shard.signature} — the whole daemon's
    observable state. *)

val tenant_signatures : t -> (int * string) list
(** Every known tenant's {!Shard.tenant_signature}, ascending. *)

val shard_signatures : t -> string list
(** Per-shard signatures, shard order. *)

type session = { drained : bool; requests : int }

val serve_channels : t -> in_channel -> out_channel -> session
(** Serve one framed-message session: read {!Wire.request}s, write the
    replies (admission reply first, then any outcomes the follow-up
    scheduling round produced).  Ends on [Drain] (drained true) or on
    EOF / a torn frame, which triggers the same graceful drain (drained
    false).  Either way every acked event has been processed and every
    shard snapshotted when this returns.  Synchronous: each request is
    flushed before the next arrives, so group commit degenerates to
    batches of one here — the batching win needs {!serve_sessions} or an
    in-process caller. *)

type served = {
  sessions : int;  (** sessions accepted over the loop's lifetime *)
  total_requests : int;
  drain_requested : bool;  (** an explicit [Drain] ended the loop *)
}

val serve_sessions : t -> listen:Unix.file_descr -> ?max_sessions:int -> unit -> served
(** Accept up to [max_sessions] (default 4) concurrent sessions on the
    listening socket and multiplex them over one admission path with
    [Unix.select].  Each poll cycle reads every ready session (session
    order, so admission order is deterministic given arrival order),
    pays one group-commit {!flush} for the whole cycle, then runs one
    {!tick} round if work is pending.  Replies that name a tenant are
    routed to the session that last submitted for that tenant; [Drained]
    broadcasts.  A torn frame drops only that session.  The loop ends on
    an explicit [Drain] (drained broadcast, all sessions closed) or when
    the last session disconnects (same graceful drain as
    {!serve_channels}).  The caller closes [listen] and calls
    {!shutdown}. *)

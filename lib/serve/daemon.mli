(** The multi-tenant placement daemon: admission control, fair
    scheduling and graceful drain over a set of {!Shard}s.

    Tenants are partitioned onto shards by [tenant mod shards]; each
    shard is an independently journaled region, so one region's crash
    recovery or quarantine storm never touches another's state.  The
    daemon in front enforces the {b robustness contract}:

    - {e bounded admission}: a global pending cap and a per-tenant cap;
      an event over either bound gets a typed
      {!Wire.Rejected_overload} naming the bound — acked events are
      never shed, shed events are never silent;
    - {e bulkhead scheduling}: each round runs through a
      {!Portfolio.Pool} with global slots and a per-tenant cap, so a
      flooding tenant saturates its own allowance while others keep
      their latency;
    - {e graceful drain}: stop admitting, process everything acked,
      snapshot every shard;
    - {e crash-resume}: {!start} recovers every shard that has a durable
      snapshot and re-queues acked-but-unprocessed tickets.

    The daemon is single-threaded and clock-free: its entire behaviour
    is a deterministic function of the request sequence and the seed,
    which is what the equal-seeds/equal-signatures bench gate checks. *)

type config = {
  shards : int;
  queue_limit : int;  (** daemon-wide pending-ticket cap *)
  tenant_queue_limit : int;  (** per-tenant pending-ticket cap *)
  round_slots : int;  (** tickets processed per scheduling round *)
  tenant_round_cap : int;  (** per-tenant tickets per round *)
  tenant_series_cap : int;
      (** bound on per-tenant labeled telemetry series
          ({!Telemetry.Metrics.set_label_cap}) *)
  shard : Shard.config;
  seed : int;
}

val default_config : config
(** 4 shards, queue 64 (8/tenant), 8 slots per round (2/tenant),
    32 labeled tenant series. *)

type t

val create :
  ?config:config ->
  ?kill:(Journal.Journaled.kill_point -> unit) ->
  stores:(int -> Shard.stores) ->
  unit ->
  t
(** Boot fresh shards ([stores i] supplies shard [i]'s journal and
    intake stores — memory stores in tests, per-shard directories under
    the CLI).  [kill] is threaded to every shard's journal (the bench's
    mid-update crash lever). *)

type started = {
  daemon : t;
  recovered_shards : int;  (** shards rebuilt from a durable snapshot *)
  replayed : int;  (** journaled events re-executed across shards *)
  reissued : int;  (** acked tickets re-queued across shards *)
  divergences : string list;  (** recovery cross-check failures *)
}

val start :
  ?config:config ->
  ?kill:(Journal.Journaled.kill_point -> unit) ->
  stores:(int -> Shard.stores) ->
  unit ->
  started
(** {!create} or crash-resume, per shard: a shard with a durable
    snapshot is {!Shard.recover}ed, one without is created fresh.
    [config.seed] must match the crashed process. *)

val submit : t -> Wire.request -> Wire.reply list
(** Handle one request.  [Submit] returns exactly one admission reply
    ([Accepted] / [Rejected_overload] / [Rejected]); [Drain] processes
    everything and returns [Drained]; [Stats] returns [Stats_reply].
    Processing outcomes for accepted events arrive from {!tick}. *)

val tick : t -> Wire.reply list
(** Run one fair scheduling round across all shards and return the
    outcome replies ([Applied] / [Quarantined_ticket]) it produced. *)

val drain : t -> Wire.reply list
(** Stop admitting, process every pending ticket, snapshot every shard.
    Returns the outcome replies followed by [Drained]. *)

val pending : t -> int

val resolved : t -> tenant:int -> ticket:int -> bool
(** The acked ticket has been processed (applied or deterministically
    quarantined) — the no-lost-acks invariant's probe. *)

val shed : t -> int
(** Overload rejections issued so far (all of them typed). *)

val draining : t -> bool

val stats_reply : t -> Wire.reply

val signature : t -> string
(** Digest over every shard's {!Shard.signature} — the whole daemon's
    observable state. *)

val tenant_signatures : t -> (int * string) list
(** Every known tenant's {!Shard.tenant_signature}, ascending. *)

val shard_signatures : t -> string list
(** Per-shard signatures, shard order. *)

type session = { drained : bool; requests : int }

val serve_channels : t -> in_channel -> out_channel -> session
(** Serve one framed-message session: read {!Wire.request}s, write the
    replies (admission reply first, then any outcomes the follow-up
    scheduling round produced).  Ends on [Drain] (drained true) or on
    EOF / a torn frame, which triggers the same graceful drain (drained
    false).  Either way every acked event has been processed and every
    shard snapshotted when this returns. *)

type weights = {
  connect : int;
  flow : int;
  update : int;
  disconnect : int;
  chaos : int;
}

let default_weights = { connect = 3; flow = 6; update = 3; disconnect = 1; chaos = 1 }

type t = {
  prng : Prng.t;
  weights : weights;
  tenants : int;
  flood_tenant : int;
  flood_bias : int;
}

let make ?(weights = default_weights) ?(tenants = 8) ?(flood_tenant = 0)
    ?(flood_bias = 2) ~seed () =
  {
    prng = Prng.create ((seed * 0x5851) + 0x2F);
    weights;
    tenants = max 1 tenants;
    flood_tenant;
    flood_bias = max 0 flood_bias;
  }

let capture t = Marshal.to_string t []
let restore s = (Marshal.from_string s 0 : t)

let next t =
  let tenant =
    if t.flood_bias > 0 && Prng.int t.prng (t.flood_bias + 1) > 0 then
      t.flood_tenant
    else Prng.int t.prng t.tenants
  in
  let w = t.weights in
  let total = w.connect + w.flow + w.update + w.disconnect + w.chaos in
  let roll = Prng.int t.prng (max 1 total) in
  let op =
    if roll < w.connect then Wire.Connect { rules = 2 + Prng.int t.prng 3 }
    else if roll < w.connect + w.flow then Wire.Flow
    else if roll < w.connect + w.flow + w.update then
      Wire.Update { rules = 2 + Prng.int t.prng 3 }
    else if roll < w.connect + w.flow + w.update + w.disconnect then
      Wire.Disconnect
    else
      Wire.Chaos
        (match Prng.int t.prng 3 with
        | 0 -> Wire.Kill_switch
        | 1 -> Wire.Cut_link
        | _ -> Wire.Shrink_capacity)
  in
  Wire.Submit { tenant; op }

(* Scaled instance families for the paper's experiments.

   The paper's testbed (CPLEX on a 3.2 GHz Xeon; Fat-Tree k in {8,16,32},
   p up to 2048 paths, r up to 110 rules per ingress policy) is scaled to
   what the in-repo exact solver completes in benchmark time; every sweep
   keeps the paper's structure (which parameter moves, which are pinned).
   EXPERIMENTS.md records the mapping per figure.

   Determinism niceties for clean sweeps:
   - routing and policies draw from independent RNG streams, so changing
     the path count does not perturb the policies;
   - paths are generated as a prefix of a fixed "universe" of
     [max paths 64] paths, so a sweep over p compares nested path sets
     (the paper's figure 10 varies only p). *)

type ingress_mode =
  | Spread  (** one ingress per region of the host space (default) *)
  | Contiguous
      (** hosts 0..n-1: multiple policies share edge switches, which is
          what makes capacity pressure (and merging) bite — used by the
          Table II experiment *)

type family = {
  k : int;  (* fat-tree arity *)
  num_policies : int;
  rules : int;  (* per-policy rule count (non-mergeable part) *)
  mergeable : int;  (* shared blacklist rules appended to every policy *)
  paths : int;  (* total routed paths *)
  capacity : int;  (* uniform per-switch ACL capacity *)
  seed : int;
  slice : bool;
  ingress_mode : ingress_mode;
}

let default =
  {
    k = 4;
    num_policies = 8;
    rules = 20;
    mergeable = 0;
    paths = 64;
    capacity = 100;
    seed = 1;
    slice = false;
    ingress_mode = Spread;
  }

(* Named substreams of a family's seed.  Each purpose gets an
   independent SplitMix64 stream keyed by a fixed xor constant, so
   consuming one stream (or adding a new purpose) never perturbs the
   others — the discipline that keeps every committed BENCH_*.json
   scoreboard byte-stable across refactors.  The routing and policy
   constants predate this table and must never change: the paper-scale
   scoreboard gate diffs solver results on instances generated from
   them. *)
let routing_stream f = Prng.create f.seed

let policy_stream f = Prng.create (f.seed lxor 0x5DEECE66D)

let traffic_stream f = Prng.create (f.seed lxor 0x2545F4914F6CDD1)

let ingresses net mode num =
  let hosts = Topo.Net.num_hosts net in
  let num = min num hosts in
  match mode with
  | Spread -> List.init num (fun i -> i * (hosts / num))
  | Contiguous -> List.init num (fun i -> i)

let build f =
  let g_routing = routing_stream f in
  let g_policy = policy_stream f in
  let net = Topo.Fattree.make f.k in
  let ing = ingresses net f.ingress_mode f.num_policies in
  let universe = max f.paths 64 in
  let routing_universe =
    Routing.Table.spray ~slice:f.slice g_routing net ~ingresses:ing
      ~total_paths:universe
  in
  (* Keep the first [paths] paths, preserving the round-robin balance
     over ingresses. *)
  let routing =
    if f.paths >= universe then routing_universe
    else begin
      (* [spray] hands path n to ingress (n mod #ingresses); the first
         [paths] paths therefore give ingress index [idx] the first
         ceil((paths - idx) / #ingresses) of its paths. *)
      let n_ing = List.length ing in
      Routing.Table.of_paths
        (List.concat
           (List.mapi
              (fun idx i ->
                let keep = (f.paths - idx + n_ing - 1) / n_ing in
                List.filteri
                  (fun n _ -> n < keep)
                  (Routing.Table.paths_from routing_universe i))
              ing))
    end
  in
  let blacklist =
    if f.mergeable > 0 then Classbench.blacklist g_policy ~num:f.mergeable
    else []
  in
  let policies =
    List.map
      (fun i ->
        let egresses =
          List.sort_uniq Stdlib.compare
            (List.map
               (fun (p : Routing.Path.t) -> p.Routing.Path.egress)
               (Routing.Table.paths_from routing_universe i))
        in
        let base =
          Classbench.policy
            ~egress_prefixes:(List.map Topo.Net.host_prefix egresses)
            g_policy ~num_rules:f.rules
        in
        (i, Classbench.with_blacklist base blacklist))
      ing
  in
  Placement.Instance.make ~net ~routing ~policies
    ~capacities:(Placement.Instance.uniform_capacity net f.capacity)

(** Parameterized benchmark instance families.

    One seeded recipe covers every experiment of the paper's Section V: a
    Fat-Tree topology, random shortest-path routing sprayed from a set of
    ingress hosts, ClassBench-style policies per ingress, an optional
    shared blacklist (the mergeable rules of Table II) and a uniform
    per-switch capacity.

    Determinism guarantees that make parameter sweeps clean:
    - routing and policy generation draw from independent streams of the
      same seed, so varying the path count does not perturb the policies;
    - paths are a prefix of a fixed 64-path universe, so sweeping [paths]
      compares nested path sets (as the paper's Figure 10 intends). *)

type ingress_mode =
  | Spread  (** one ingress per region of the host space (default) *)
  | Contiguous
      (** hosts 0..n-1: multiple policies share edge switches, which is
          what makes capacity pressure (and merging) bite — used by the
          Table II experiment *)

type family = {
  k : int;  (** fat-tree arity (even) *)
  num_policies : int;
  rules : int;  (** per-policy rule count (non-mergeable part) *)
  mergeable : int;  (** shared blacklist rules appended to every policy *)
  paths : int;  (** total routed paths *)
  capacity : int;  (** uniform per-switch ACL capacity *)
  seed : int;
  slice : bool;  (** attach per-egress flow regions to paths *)
  ingress_mode : ingress_mode;
}

val default : family
(** k=4, 8 policies, 20 rules, 64 paths, capacity 100, seed 1. *)

val build : family -> Placement.Instance.t

val ingresses : Topo.Net.t -> ingress_mode -> int -> int list
(** The ingress hosts a family with this mode and policy count uses. *)

(** {2 Named seed substreams}

    Every purpose draws from an independent stream of the family seed,
    so consuming one stream never perturbs another.  [build] uses the
    routing and policy streams; the traffic stream feeds the dynamic
    Zipf workload ([Traffic.Zipf]) layered on a family's paths. *)

val routing_stream : family -> Prng.t

val policy_stream : family -> Prng.t

val traffic_stream : family -> Prng.t

(** Popularity-driven TCAM caching with neighbor delegation.

    The runtime engine's live tables are the {e full} placement — the
    solver-verified ground truth.  Real switches hold a smaller
    hardware TCAM, so this layer maintains, per switch, a {e resident}
    subset under a hardware capacity, plus {e delegated} copies of
    evicted DROPs on neighbor switches along the affected paths — the
    FDRC/flow-delegation scheme.  A packet that misses falls through
    the switch's implicit low-priority default (permit and continue),
    and is still decided correctly later on its path:

    - {b permit-safety}: a resident DROP's higher-priority overlapping
      same-tag PERMITs (its guards) are always co-resident at the same
      switch, above it — so no cached table ever drops a packet the
      big-switch policy permits;
    - {b drop-safety}: for every (policy DROP, routed path) pair the
      full placement covers, some switch on the path retains the DROP
      (resident at a home switch, or a delegated copy with its guards
      at a neighbor) — so every policy-dropped packet still dies
      on-path.

    When a DROP can neither stay nor delegate (no neighbor has room),
    it is {e force-pinned} at its home switch; the excess over hardware
    capacity is reported as [overflow] instead of ever trading
    correctness for space.

    Eviction policy: per-rule hit counters from traced {!Netsim} walks,
    aged by an exponential decay each epoch; each {!rebalance}
    recomputes the hottest feasible resident set.  All decisions are
    deterministic functions of the accounted traffic, so equal seeds
    give equal cache states, and the whole struct is plain data — it
    rides a journal client blob for crash-resume. *)

type config = {
  hw_capacity : int array;  (** per-switch hardware TCAM slots *)
  decay : float;  (** per-epoch score retention in [0,1] (default 0.5) *)
}

val default_decay : float

type t

val create :
  ?decay:float ->
  net:Topo.Net.t ->
  paths:Routing.Path.t list ->
  hw:int array ->
  Netsim.entry list array ->
  t
(** [create ~net ~paths ~hw full] boots the cache over the full tables;
    nothing is resident until the first {!rebalance}.  [paths] is the
    flow universe (the instance routing).  Raises [Invalid_argument]
    when [hw] length differs from the switch count. *)

val refresh : t -> ?paths:Routing.Path.t list -> Netsim.entry list array -> unit
(** Adopt new full tables (after a re-solve or churn event): entry
    metadata and coverage units are rebuilt, popularity scores carry
    over by rule identity — (tag, priority, action) — so a migrated
    rule keeps its history, residency is cleared until the next
    {!rebalance}.  Delegations are folded back — the re-solved
    placement supersedes them. *)

val cached_tables : t -> Netsim.entry list array
(** The hardware view: per-switch resident + delegated entries in
    match order (priority-descending per tag). *)

val full_tables : t -> Netsim.entry list array

type walk = {
  w_full : Netsim.outcome;
  w_cached : Netsim.outcome;
  w_hit : bool;  (** every full-table match was resident at its switch *)
}

val account : t -> path:Routing.Path.t -> weight:int -> Ternary.Packet.t -> walk
(** Walk one probe packet (standing for [weight] identical packets of
    its flow) along its path through both the full and the cached
    tables: per-rule hit counters are bumped by [weight] at every
    full-table match, the hit/miss tallies are updated, and both
    outcomes are returned — a disagreement is a correctness violation
    the caller must surface. *)

val decay : t -> unit
(** Age every popularity score and per-ingress miss mass by the
    configured retention factor (call once per epoch, before
    accounting). *)

val miss_masses : t -> (int * float) list
(** Decayed miss weight per ingress tag, ascending by tag — which
    ingresses' traffic the cached tables are currently failing to serve
    at home.  The re-solve policy's targeting signal. *)

val clear_miss : t -> int -> unit
(** Forget one ingress's miss mass (call when it has been re-solved:
    the new placement gets a clean slate). *)

type rebalance_stats = {
  resident : int;  (** resident entries after the pass (all switches) *)
  delegated : int;  (** delegated copies installed *)
  evictions : int;  (** entries resident before the pass, gone after *)
  delegations_new : int;  (** delegated drops not delegated before *)
  pinned : int;  (** force-pinned coverage units (no delegate had room) *)
  overflow : int;  (** slots in excess of hw capacity, summed *)
}

val rebalance : ?pinned_tags:int list -> t -> rebalance_stats
(** Recompute residency from current scores: per switch, keep the
    hottest DROPs (with their guards) under hardware capacity; repair
    every uncovered (DROP, path) unit by delegation to the
    most-underutilized on-path neighbor, force-pinning when no
    neighbor has room.  [pinned_tags] (e.g. quarantined ingresses)
    are always resident.  Deterministic given scores. *)

type check_report = {
  guard_violations : int;
  coverage_violations : int;
  capacity_violations : int;  (** switches over hw capacity beyond reported overflow *)
}

val check : t -> check_report
(** Structural self-check of the invariants above on the current cached
    tables; all-zero on a correct state (the bench gates on it). *)

val hits : t -> int
val misses : t -> int
val delegated_hits : t -> int
(** Cached-table matches served by a delegated copy (subset of the hit
    tally's complement accounting; informational). *)

val hit_rate : t -> float
(** hits / (hits + misses); 1.0 when nothing was accounted. *)

val reset_counters : t -> unit

val occupancy : t -> float array
(** Per-switch full-table size divided by hardware capacity — how
    oversubscribed each TCAM already is, popularity aside. *)

val score_pressure : t -> float array
(** Per-switch decayed popularity mass homed at each switch divided by
    its hardware capacity — the cache-pressure signal the re-solve
    policy turns into {!Placement.Encode.Switch_weighted} costs. *)

val capture : t -> string
(** Marshal the cache state (scores, residency, delegations, tallies)
    for a journal client blob. *)

val restore :
  net:Topo.Net.t ->
  paths:Routing.Path.t list ->
  Netsim.entry list array ->
  string ->
  t
(** Rebuild from {!capture} output plus the (re-derivable) topology,
    paths and full tables the blob was captured against. *)

(** The traffic-driven caching controller: one epoch loop tying the
    drifting-Zipf workload ({!Zipf}), the TCAM cache ({!Cache}) and the
    crash-safe runtime ({!Journal.Journaled} around {!Runtime.Engine})
    together.

    Each epoch: draw the next traffic matrix; age the popularity scores;
    walk one probe packet per traffic share through {e both} the full
    and the cached tables (differential correctness check + hit
    accounting); when popularity has drifted past the threshold since
    the last re-solve, push the cache-pressure signal into the solver's
    {!Placement.Encode.Switch_weighted} objective
    ({!Runtime.Engine.reweight}) and re-solve the most-drifted ingresses
    as deadline-bounded incremental [Update_policy] events through the
    journaled engine; finally rebalance the cache and emit one
    deterministic report line.

    Determinism and durability:
    - equal configs give byte-identical {!line} sequences (all
      randomness flows from the family seed's named substreams; report
      lines carry no wall-clock fields);
    - every re-solve event rides the journal with a client blob holding
      the complete controller state, and every epoch boundary forces a
      snapshot — {!resume} re-enters the loop after a crash at {e any}
      point and converges to the same report sequence and cache state
      as an uncrashed run;
    - the static baseline ([adaptive = false]) places the cache once,
      popularity-blind, and never adapts — the no-cache-management
      baseline the adaptive hit-rate is gated against. *)

type config = {
  family : Workload.family;  (** instance recipe (topology/routing/policies) *)
  epochs : int;  (** epochs to run *)
  packets : int;  (** exact packets per epoch *)
  alpha : float;  (** Zipf exponent *)
  drift : float;  (** rank transpositions per epoch / flows *)
  probes : int;  (** max probe packets per flow per epoch (>= 1) *)
  hw_frac : float;
      (** hardware TCAM capacity as a fraction of each switch's full
          table (floor 1 slot; see {!hw_of_frac}) *)
  decay : float;  (** per-epoch popularity retention *)
  threshold : float;
      (** re-solve when L1 drift since the last re-solve exceeds this
          fraction of the maximum possible drift (2 x packets) *)
  resolve_top : int;  (** most-drifted ingresses re-solved per trigger *)
  adaptive : bool;  (** false = static baseline (no decay/resolve/rebalance) *)
  deadline_s : float;  (** per-event runtime budget *)
}

val default : config
(** [Workload.default] family, 6 epochs, 4096 packets, alpha 1.1, drift
    0.125, 4 probes, hw_frac 0.5, threshold 0.08, top 2, adaptive. *)

val hw_of_frac : ?floor:int -> Netsim.entry list array -> float -> int array
(** Per-switch hardware capacity: [frac] of the full table size, rounded
    to nearest, never below [floor] (default 1). *)

type epoch_report = {
  e_index : int;
  e_drift : int;  (** L1 popularity drift since the last re-solve *)
  e_resolved : int list;  (** ingresses re-solved this epoch *)
  e_rungs : string list;  (** ladder rung per re-solve event *)
  e_hits : int;  (** this epoch's cache hits (traffic-weighted) *)
  e_misses : int;
  e_dhits : int;  (** hits served by a delegated copy *)
  e_violations : int;  (** full-vs-cached outcome disagreements *)
  e_stats : Cache.rebalance_stats;
  e_check : Cache.check_report;
}

val line : epoch_report -> string
(** Canonical timing-free rendering — the byte-identical replay
    contract is over these. *)

type t

val create :
  ?store:Journal.Store.t ->
  ?kill:(Journal.Journaled.kill_point -> unit) ->
  config ->
  t
(** Build the instance, solve the initial placement (under the weighted
    objective when adaptive), boot the journaled engine on [store]
    (default: a fresh in-memory store), place the cache and persist
    snapshot zero.  [kill] is the journal's simulated-crash hook (see
    {!Journal.Journaled.kill_point}) — the crash-resume tests raise
    {!Journal.Journaled.Killed} from it mid-epoch and {!resume} from the
    same store.  Raises [Invalid_argument] when the initial solve fails
    or the config is malformed. *)

val resume : store:Journal.Store.t -> config -> (t, string) result
(** Re-enter a crashed run from its journal.  [config] must equal the
    original (it is not persisted).  Replays the log, restores the
    cache and epoch position from the client blob, and finishes any
    half-done epoch on the first {!step} — converging to the same
    report sequence as an uncrashed run.  [Error] on an unusable store
    or a replay divergence. *)

val step : t -> epoch_report option
(** Run the next epoch ([None] when [epochs] are done).  Spans
    ["traffic.epoch"] when tracing is enabled. *)

val run : t -> epoch_report list
(** {!step} to completion; returns {e all} epoch reports in order,
    including ones produced before a crash/resume. *)

val reports : t -> epoch_report list
(** All epoch reports so far, in order. *)

val epoch : t -> int
(** Next epoch index to run. *)

val config : t -> config

val cache : t -> Cache.t

val engine : t -> Runtime.Engine.t

val resolves : t -> int
(** Total re-solve events issued. *)

val violations : t -> int
(** Total differential violations observed (gate: zero). *)

type config = {
  flows : int;
  packets : int;
  alpha : float;
  drift : float;
  seed : int;
}

let default = { flows = 64; packets = 4096; alpha = 1.1; drift = 0.125; seed = 1 }

type epoch = { index : int; counts : int array }

type t = {
  cfg : config;
  g : Prng.t;  (* the dedicated traffic stream; nothing else draws here *)
  perm : int array;  (* perm.(r) = flow id currently at popularity rank r *)
  weights : float array;  (* rank weights (r+1)^-alpha, fixed *)
  mutable index : int;  (* next epoch to emit *)
}

let validate cfg =
  if cfg.flows < 1 then invalid_arg "Zipf.create: flows < 1";
  if cfg.packets < 0 then invalid_arg "Zipf.create: packets < 0";
  if cfg.alpha < 0.0 then invalid_arg "Zipf.create: alpha < 0";
  if cfg.drift < 0.0 then invalid_arg "Zipf.create: drift < 0"

let create cfg =
  validate cfg;
  let g = Prng.create (cfg.seed lxor 0x2545F4914F6CDD1) in
  let perm = Array.init cfg.flows (fun i -> i) in
  Prng.shuffle g perm;
  let weights =
    Array.init cfg.flows (fun r -> Float.pow (float_of_int (r + 1)) (-.cfg.alpha))
  in
  { cfg; g; perm; weights; index = 0 }

let config t = t.cfg

(* Largest-remainder rounding of [packets] onto the rank weights: exact
   integer mass, so "drift preserves total traffic" is an identity, not
   an approximation. *)
let counts_of_perm t =
  let n = t.cfg.flows in
  let total = t.cfg.packets in
  let w_sum = Array.fold_left ( +. ) 0.0 t.weights in
  let counts = Array.make n 0 in
  let rem = Array.make n (0.0, 0) in
  let assigned = ref 0 in
  for r = 0 to n - 1 do
    let exact = float_of_int total *. t.weights.(r) /. w_sum in
    let base = int_of_float (Float.floor exact) in
    counts.(t.perm.(r)) <- base;
    assigned := !assigned + base;
    rem.(r) <- (exact -. float_of_int base, r)
  done;
  (* Leftover units go to the largest fractional remainders; ties break
     toward the more popular rank so the result is order-independent. *)
  Array.sort
    (fun (a, ra) (b, rb) -> if a = b then compare ra rb else compare b a)
    rem;
  let leftover = total - !assigned in
  for i = 0 to leftover - 1 do
    let _, r = rem.(i) in
    counts.(t.perm.(r)) <- counts.(t.perm.(r)) + 1
  done;
  counts

let swaps_per_epoch cfg =
  int_of_float (Float.round (cfg.drift *. float_of_int cfg.flows))

let advance_perm t =
  let n = t.cfg.flows in
  if n > 1 then
    for _ = 1 to swaps_per_epoch t.cfg do
      let r = Prng.int t.g (n - 1) in
      let a = t.perm.(r) in
      t.perm.(r) <- t.perm.(r + 1);
      t.perm.(r + 1) <- a
    done

let next t =
  let e = { index = t.index; counts = counts_of_perm t } in
  t.index <- t.index + 1;
  advance_perm t;
  e

let at cfg i =
  let t = create cfg in
  (* Epoch i's permutation depends only on the i * swaps drift draws
     before it, so skipping is a pure permutation replay. *)
  for _ = 1 to i do
    advance_perm t
  done;
  t.index <- i;
  t

let epoch cfg i = next (at cfg i)

let epochs cfg n =
  let t = create cfg in
  let rec go acc k = if k = 0 then List.rev acc else go (next t :: acc) (k - 1) in
  go [] n

let l1_drift a b =
  if Array.length a.counts <> Array.length b.counts then
    invalid_arg "Zipf.l1_drift: different flow universes";
  let acc = ref 0 in
  Array.iteri (fun i c -> acc := !acc + abs (c - b.counts.(i))) a.counts;
  !acc

(** Drifting-Zipf traffic epochs.

    A flow is an index into some fixed universe (the traffic layer uses
    a routed path list); an {!epoch} assigns every flow an exact integer
    packet count.  Popularity is Zipf over a seeded rank permutation:
    rank [r] carries weight [(r+1){^-alpha}], rounded to integers by
    largest remainder so every epoch's counts sum {e exactly} to
    [packets].  Between epochs the permutation drifts by a fixed number
    of seeded adjacent-rank transpositions — gradual popularity churn,
    the regime FDRC-style rule caches are built for.

    Determinism follows {!Workload}'s stream discipline:
    - equal configs (seed included) give byte-identical epoch sequences;
    - epochs are generated {e sequentially} from one dedicated stream,
      so epoch [i] depends only on epochs [0..i-1] — running 5 epochs or
      50 leaves the first 5 untouched (the nested-sweep prefix
      property);
    - the stream is independent of the routing/policy streams, so
      adding traffic to an experiment never perturbs its instances. *)

type config = {
  flows : int;  (** flow universe size (>= 1) *)
  packets : int;  (** exact total packets per epoch (>= 0) *)
  alpha : float;  (** Zipf exponent (>= 0; 0 = uniform) *)
  drift : float;
      (** adjacent-rank transpositions per epoch, as a fraction of
          [flows] (>= 0; 0 = static popularity) *)
  seed : int;
}

val default : config
(** 64 flows, 4096 packets, alpha 1.1, drift 0.125, seed 1. *)

type epoch = {
  index : int;
  counts : int array;  (** packets per flow; sums to [config.packets] *)
}

type t
(** A sequential epoch stream (mutable). *)

val create : config -> t
(** Positioned to emit epoch 0.  Raises [Invalid_argument] on a config
    with [flows < 1], [packets < 0], [alpha < 0] or [drift < 0]. *)

val config : t -> config

val next : t -> epoch
(** Emit the next epoch and advance. *)

val at : config -> int -> t
(** A stream positioned to emit epoch [i] next — how a crash-resumed
    controller re-enters the sequence it was cut from. *)

val epoch : config -> int -> epoch
(** Stateless: regenerate epoch [i] from scratch (O(i) advance). *)

val epochs : config -> int -> epoch list
(** The first [n] epochs. *)

val l1_drift : epoch -> epoch -> int
(** Sum of absolute per-flow count differences — the (unnormalized)
    popularity-drift metric the re-solve policy thresholds on.  Bounded
    by [2 * packets]. *)

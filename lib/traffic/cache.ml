type config = { hw_capacity : int array; decay : float }

let default_decay = 0.5

let m_hits =
  Telemetry.Metrics.counter ~help:"traced packets fully served by resident rules"
    "sdnplace_traffic_cache_hits_total"

let m_misses =
  Telemetry.Metrics.counter
    ~help:"traced packets that missed an evicted rule at its home switch"
    "sdnplace_traffic_cache_misses_total"

let m_evictions =
  Telemetry.Metrics.counter ~help:"resident entries evicted by rebalances"
    "sdnplace_traffic_evictions_total"

let m_delegations =
  Telemetry.Metrics.counter ~help:"drops newly delegated to a neighbor switch"
    "sdnplace_traffic_delegations_total"

(* Popularity is keyed by rule identity — the (tag, priority, action)
   triple — not by the copy's switch: flow popularity is a property of
   the rule, so a re-solve that migrates a hot rule between switches
   must carry its history along (resetting it would make the rebalance
   evict exactly the rules the re-solve just moved toward the hot
   spot). *)
type key = { k_tag : int; k_prio : int; k_drop : bool }

type origin = Home of int | Deleg of int * int  (* (home switch, home idx) *)

type deleg = { d_at : int; d_home : int; d_idx : int }

(* A coverage obligation: policy [u_tag]'s DROP at priority [u_prio]
   must survive somewhere on path [u_path] (an index into [paths]);
   [hosts] are the full-placement copies lying on that path. *)
type unit_ = {
  u_tag : int;
  u_prio : int;
  u_path : int;
  mutable hosts : (int * int) list;
}

type t = {
  net : Topo.Net.t;
  hw : int array;
  decay_f : float;
  scores : (key, float) Hashtbl.t;
  mutable paths : Routing.Path.t array;
  mutable full : Netsim.entry array array;  (* indexed view of the tables *)
  mutable full_tables : Netsim.entry list array;
  mutable guards : int list array array;  (* per (switch, idx): guard idxs *)
  mutable entry_units : int list array array;  (* per (switch, idx): unit ids *)
  mutable units : unit_ array;
  mutable resident : bool array array;  (* meaningful on DROP indices *)
  mutable pinned : bool array array;
  mutable delegated : deleg list;  (* insertion order (oldest first) *)
  mutable cached : Netsim.entry list array;
  mutable origin : origin array array;  (* aligned with [cached] *)
  mutable overflow : int array;  (* per-switch slots past hw, force-pins *)
  miss_tag : (int, float) Hashtbl.t;  (* per-ingress decayed miss mass *)
  mutable last_pins : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_dhits : int;
}

let tag_of (e : Netsim.entry) =
  match e.Netsim.tags with [] -> -1 | tag :: _ -> Netsim.base_tag tag

let prio_of (e : Netsim.entry) = e.Netsim.rule.Acl.Rule.priority

let key_of t s idx =
  let e = t.full.(s).(idx) in
  {
    k_tag = tag_of e;
    k_prio = prio_of e;
    k_drop = Acl.Rule.is_drop e.Netsim.rule;
  }

let score t s idx =
  match Hashtbl.find_opt t.scores (key_of t s idx) with
  | Some x -> x
  | None -> 0.0

let bump t s idx w =
  let k = key_of t s idx in
  let cur = match Hashtbl.find_opt t.scores k with Some x -> x | None -> 0.0 in
  Hashtbl.replace t.scores k (cur +. float_of_int w)

let share_tag (a : Netsim.entry) (b : Netsim.entry) =
  List.exists (fun x -> List.mem x b.Netsim.tags) a.Netsim.tags

(* Rebuild the derived metadata (indexed tables, guard sets, coverage
   units) from a set of full tables; clears residency and delegations. *)
let derive t paths (tables : Netsim.entry list array) =
  let n = Array.length tables in
  t.paths <- Array.of_list paths;
  t.full_tables <- Array.copy tables;
  t.full <- Array.map Array.of_list tables;
  t.guards <-
    Array.init n (fun s ->
        let es = t.full.(s) in
        Array.init (Array.length es) (fun i ->
            let e = es.(i) in
            if not (Acl.Rule.is_drop e.Netsim.rule) then []
            else
              List.filter
                (fun j ->
                  let g = es.(j) in
                  Acl.Rule.is_permit g.Netsim.rule
                  && prio_of g > prio_of e
                  && share_tag g e
                  && Acl.Rule.overlaps g.Netsim.rule e.Netsim.rule)
                (List.init (Array.length es) (fun j -> j))));
  let table = Hashtbl.create 64 in
  let order = ref [] in
  Array.iteri
    (fun s es ->
      Array.iteri
        (fun idx (e : Netsim.entry) ->
          if Acl.Rule.is_drop e.Netsim.rule then
            List.iter
              (fun tag ->
                let tag = Netsim.base_tag tag in
                Array.iteri
                  (fun pi (p : Routing.Path.t) ->
                    if
                      p.Routing.Path.ingress = tag
                      && Routing.Path.mem p s
                      && Ternary.Field.overlaps e.Netsim.rule.Acl.Rule.field
                           p.Routing.Path.flow
                    then
                      let k = (tag, prio_of e, pi) in
                      match Hashtbl.find_opt table k with
                      | Some u -> u.hosts <- u.hosts @ [ (s, idx) ]
                      | None ->
                        let u =
                          {
                            u_tag = tag;
                            u_prio = prio_of e;
                            u_path = pi;
                            hosts = [ (s, idx) ];
                          }
                        in
                        Hashtbl.replace table k u;
                        order := u :: !order)
                  t.paths)
              e.Netsim.tags)
        es)
    t.full;
  let units =
    List.sort
      (fun a b ->
        if a.u_tag <> b.u_tag then compare a.u_tag b.u_tag
        else if a.u_prio <> b.u_prio then compare b.u_prio a.u_prio
        else compare a.u_path b.u_path)
      (List.rev !order)
  in
  t.units <- Array.of_list units;
  t.entry_units <- Array.init n (fun s -> Array.make (Array.length t.full.(s)) []);
  Array.iteri
    (fun ui u ->
      List.iter
        (fun (s, idx) -> t.entry_units.(s).(idx) <- ui :: t.entry_units.(s).(idx))
        u.hosts)
    t.units;
  t.resident <- Array.init n (fun s -> Array.make (Array.length t.full.(s)) false);
  t.pinned <- Array.init n (fun s -> Array.make (Array.length t.full.(s)) false);
  t.delegated <- [];
  t.cached <- Array.make n [];
  t.origin <- Array.init n (fun _ -> [||]);
  t.overflow <- Array.make n 0

let create ?(decay = default_decay) ~net ~paths ~hw tables =
  if Array.length hw <> Array.length tables then
    invalid_arg "Cache.create: one hw capacity per switch required";
  let t =
    {
      net;
      hw = Array.copy hw;
      decay_f = decay;
      scores = Hashtbl.create 256;
      paths = [||];
      full = [||];
      full_tables = [||];
      guards = [||];
      entry_units = [||];
      units = [||];
      resident = [||];
      pinned = [||];
      delegated = [];
      cached = [||];
      origin = [||];
      overflow = [||];
      miss_tag = Hashtbl.create 16;
      last_pins = 0;
      c_hits = 0;
      c_misses = 0;
      c_dhits = 0;
    }
  in
  derive t paths tables;
  t

let refresh t ?paths tables =
  let paths = match paths with Some p -> p | None -> Array.to_list t.paths in
  derive t paths tables

let full_tables t = Array.copy t.full_tables

let cached_tables t = Array.copy t.cached

(* The hardware view: resident drops with their (deduplicated) guards,
   plus delegated copies, sorted priority-descending (stable).  With
   unmerged placements every entry carries one tag, so priority order
   per tag is policy order and first-match equals the big-switch policy
   restricted to what is installed. *)
let build_cached t =
  let n = Array.length t.full in
  let tbls =
    Array.init n (fun s ->
        let len = Array.length t.full.(s) in
        let guard_live = Array.make len false in
        Array.iteri
          (fun idx r ->
            if r then
              List.iter (fun g -> guard_live.(g) <- true) t.guards.(s).(idx))
          t.resident.(s);
        let home = ref [] in
        for idx = len - 1 downto 0 do
          if t.resident.(s).(idx) || guard_live.(idx) then
            home := (t.full.(s).(idx), Home idx) :: !home
        done;
        let delegs =
          List.concat_map
            (fun d ->
              if d.d_at <> s then []
              else
                let org = Deleg (d.d_home, d.d_idx) in
                List.map
                  (fun j -> (t.full.(d.d_home).(j), org))
                  t.guards.(d.d_home).(d.d_idx)
                @ [ (t.full.(d.d_home).(d.d_idx), org) ])
            t.delegated
        in
        List.stable_sort
          (fun ((a : Netsim.entry), _) ((b : Netsim.entry), _) ->
            compare (prio_of b) (prio_of a))
          (!home @ delegs))
  in
  t.cached <- Array.map (List.map fst) tbls;
  t.origin <- Array.map (fun l -> Array.of_list (List.map snd l)) tbls

(* {2 Rebalance} *)

type rebalance_stats = {
  resident : int;
  delegated : int;
  evictions : int;
  delegations_new : int;
  pinned : int;
  overflow : int;
}

let rebalance ?(pinned_tags = []) t =
  let n = Array.length t.full in
  let prev_res = Array.map Array.copy t.resident in
  let prev_deleg = t.delegated in
  Array.iter (fun a -> Array.fill a 0 (Array.length a) false) t.resident;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) false) t.pinned;
  t.delegated <- [];
  let used = Array.make n 0 in
  let guard_ref = Array.init n (fun s -> Array.make (Array.length t.full.(s)) 0) in
  let add_resident s idx =
    if not t.resident.(s).(idx) then begin
      t.resident.(s).(idx) <- true;
      used.(s) <- used.(s) + 1;
      List.iter
        (fun g ->
          guard_ref.(s).(g) <- guard_ref.(s).(g) + 1;
          if guard_ref.(s).(g) = 1 then used.(s) <- used.(s) + 1)
        t.guards.(s).(idx)
    end
  in
  let evict s idx =
    if t.resident.(s).(idx) then begin
      t.resident.(s).(idx) <- false;
      used.(s) <- used.(s) - 1;
      List.iter
        (fun g ->
          guard_ref.(s).(g) <- guard_ref.(s).(g) - 1;
          if guard_ref.(s).(g) = 0 then used.(s) <- used.(s) - 1)
        t.guards.(s).(idx)
    end
  in
  let marginal s idx =
    1
    + List.fold_left
        (fun acc g -> if guard_ref.(s).(g) = 0 then acc + 1 else acc)
        0 t.guards.(s).(idx)
  in
  (* Phase A: per-switch greedy by decayed popularity.  Fenced tags
     (quarantined ingresses) are mandatory regardless of space — the
     fail-closed fence outranks the cache. *)
  for s = 0 to n - 1 do
    let drops = ref [] in
    Array.iteri
      (fun idx (e : Netsim.entry) ->
        if Acl.Rule.is_drop e.Netsim.rule then drops := idx :: !drops)
      t.full.(s);
    let drops = List.rev !drops in
    List.iter
      (fun idx ->
        if List.mem (tag_of t.full.(s).(idx)) pinned_tags then begin
          add_resident s idx;
          t.pinned.(s).(idx) <- true
        end)
      drops;
    (* Greedy by popularity per hardware slot: a drop's marginal cost
       counts the guards it would newly pull in, so two hot drops
       sharing a guard beat one hot drop that needs its own — and the
       density of each candidate changes as guards come live, hence the
       iterative re-selection rather than a one-shot sort. *)
    let rec fill () =
      let best = ref None in
      List.iter
        (fun idx ->
          if not t.resident.(s).(idx) then begin
            let m = marginal s idx in
            if used.(s) + m <= t.hw.(s) then begin
              let d = score t s idx /. float_of_int m in
              match !best with
              | None -> best := Some (d, idx)
              | Some (d', idx') ->
                if d > d' || (d = d' && idx < idx') then best := Some (d, idx)
            end
          end)
        drops;
      match !best with
      | Some (_, idx) ->
        add_resident s idx;
        fill ()
      | None -> ()
    in
    fill ()
  done;
  (* Phase B: coverage repair.  An uncovered (drop, path) unit is
     delegated to the on-path neighbor with the most free hardware
     space; with no room anywhere it is force-pinned back at a home
     switch, evicting that switch's coldest unpinned drops (whose own
     units re-enter the queue). *)
  let covered u =
    List.exists (fun (s, idx) -> t.resident.(s).(idx)) u.hosts
    || List.exists
         (fun d ->
           let e = t.full.(d.d_home).(d.d_idx) in
           tag_of e = u.u_tag
           && prio_of e = u.u_prio
           && Routing.Path.mem t.paths.(u.u_path) d.d_at)
         t.delegated
  in
  let queue = Queue.create () in
  Array.iteri (fun ui _ -> Queue.push ui queue) t.units;
  let pins = ref 0 in
  while not (Queue.is_empty queue) do
    let u = t.units.(Queue.pop queue) in
    if not (covered u) then begin
      let p = t.paths.(u.u_path) in
      let hs, hidx = List.hd u.hosts in
      let cost = 1 + List.length t.guards.(hs).(hidx) in
      let free d = t.hw.(d) - used.(d) in
      let cands =
        List.concat_map
          (fun (s, _) ->
            List.filter (fun d -> Routing.Path.mem p d) (Topo.Net.neighbors t.net s))
          u.hosts
        |> List.sort_uniq compare
        |> List.sort (fun a b ->
               if free a <> free b then compare (free b) (free a) else compare a b)
      in
      match List.find_opt (fun d -> free d >= cost) cands with
      | Some d ->
        t.delegated <- t.delegated @ [ { d_at = d; d_home = hs; d_idx = hidx } ];
        used.(d) <- used.(d) + cost
      | None ->
        incr pins;
        let best =
          List.fold_left
            (fun acc (s, idx) ->
              match acc with
              | None -> Some (s, idx)
              | Some (s', _) ->
                if free s > free s' || (free s = free s' && s < s') then
                  Some (s, idx)
                else acc)
            None u.hosts
        in
        let s, idx = Option.get best in
        add_resident s idx;
        t.pinned.(s).(idx) <- true;
        let exception Done in
        (try
           while used.(s) > t.hw.(s) do
             let victims = ref [] in
             Array.iteri
               (fun i r -> if r && not t.pinned.(s).(i) then victims := i :: !victims)
               t.resident.(s);
             let victims =
               List.sort
                 (fun a b ->
                   let sa = score t s a and sb = score t s b in
                   if sa <> sb then compare sa sb else compare b a)
                 !victims
             in
             match victims with
             | [] -> raise Done
             | v :: _ ->
               evict s v;
               List.iter (fun ui -> Queue.push ui queue) t.entry_units.(s).(v)
           done
         with Done -> ())
    end
  done;
  for s = 0 to n - 1 do
    t.overflow.(s) <- max 0 (used.(s) - t.hw.(s))
  done;
  t.last_pins <- !pins;
  build_cached t;
  let evictions = ref 0 in
  Array.iteri
    (fun s prev ->
      Array.iteri
        (fun idx r -> if r && not t.resident.(s).(idx) then incr evictions)
        prev)
    prev_res;
  let delegations_new =
    List.length (List.filter (fun d -> not (List.mem d prev_deleg)) t.delegated)
  in
  Telemetry.Metrics.add m_evictions !evictions;
  Telemetry.Metrics.add m_delegations delegations_new;
  let total_cached =
    Array.fold_left (fun acc l -> acc + List.length l) 0 t.cached
  in
  let delegated_slots =
    List.fold_left
      (fun acc d -> acc + 1 + List.length t.guards.(d.d_home).(d.d_idx))
      0 t.delegated
  in
  {
    resident = total_cached - delegated_slots;
    delegated = delegated_slots;
    evictions = !evictions;
    delegations_new;
    pinned = !pins;
    overflow = Array.fold_left ( + ) 0 t.overflow;
  }

(* {2 Accounting} *)

type walk = { w_full : Netsim.outcome; w_cached : Netsim.outcome; w_hit : bool }

let account t ~path ~weight packet =
  let tag = path.Routing.Path.ingress in
  let w_full, fhops = Netsim.forward_trace t.full_tables path ~tag packet in
  let w_cached, chops = Netsim.forward_trace t.cached path ~tag packet in
  let matches = ref 0 in
  let all_resident = ref true in
  List.iter
    (fun (h : Netsim.hop) ->
      match h.Netsim.matched with
      | None -> ()
      | Some idx ->
        incr matches;
        bump t h.Netsim.hop_switch idx weight;
        if not t.resident.(h.Netsim.hop_switch).(idx) then all_resident := false)
    fhops;
  let w_hit = !matches = 0 || !all_resident in
  if !matches > 0 then
    if w_hit then begin
      t.c_hits <- t.c_hits + weight;
      Telemetry.Metrics.add m_hits weight
    end
    else begin
      t.c_misses <- t.c_misses + weight;
      let cur =
        match Hashtbl.find_opt t.miss_tag tag with Some x -> x | None -> 0.0
      in
      Hashtbl.replace t.miss_tag tag (cur +. float_of_int weight);
      Telemetry.Metrics.add m_misses weight
    end;
  if
    List.exists
      (fun (h : Netsim.hop) ->
        match h.Netsim.matched with
        | None -> false
        | Some idx -> (
          match t.origin.(h.Netsim.hop_switch).(idx) with
          | Deleg _ -> true
          | Home _ -> false))
      chops
  then t.c_dhits <- t.c_dhits + weight;
  { w_full; w_cached; w_hit }

let decay t =
  Hashtbl.filter_map_inplace (fun _ v -> Some (v *. t.decay_f)) t.scores;
  Hashtbl.filter_map_inplace (fun _ v -> Some (v *. t.decay_f)) t.miss_tag

let miss_masses t =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.miss_tag [])

let clear_miss t tag = Hashtbl.remove t.miss_tag tag

let hits t = t.c_hits

let misses t = t.c_misses

let delegated_hits t = t.c_dhits

let hit_rate t =
  let total = t.c_hits + t.c_misses in
  if total = 0 then 1.0 else float_of_int t.c_hits /. float_of_int total

let reset_counters t =
  t.c_hits <- 0;
  t.c_misses <- 0;
  t.c_dhits <- 0

let occupancy t =
  Array.map
    (fun es -> float_of_int (Array.length es))
    t.full
  |> Array.mapi (fun s n -> n /. float_of_int (max 1 t.hw.(s)))

let score_pressure t =
  Array.mapi
    (fun s es ->
      let mass = ref 0.0 in
      Array.iteri
        (fun idx (e : Netsim.entry) ->
          if Acl.Rule.is_drop e.Netsim.rule then mass := !mass +. score t s idx)
        es;
      !mass /. float_of_int (max 1 t.hw.(s)))
    t.full

(* {2 Self-check} *)

type check_report = {
  guard_violations : int;
  coverage_violations : int;
  capacity_violations : int;
}

let check t =
  let guard_violations = ref 0 in
  Array.iteri
    (fun s entries ->
      let arr = Array.of_list entries in
      Array.iteri
        (fun pos (e : Netsim.entry) ->
          if Acl.Rule.is_drop e.Netsim.rule then begin
            (* every guard of the drop's home copy must sit above it *)
            let home_s, home_idx =
              match t.origin.(s).(pos) with
              | Home idx -> (s, idx)
              | Deleg (hs, hi) -> (hs, hi)
            in
            List.iter
              (fun g ->
                let grule = t.full.(home_s).(g).Netsim.rule in
                let found = ref false in
                for j = 0 to pos - 1 do
                  if
                    Acl.Rule.equal arr.(j).Netsim.rule grule
                    && share_tag arr.(j) e
                  then found := true
                done;
                if not !found then incr guard_violations)
              t.guards.(home_s).(home_idx)
          end)
        arr)
    t.cached;
  let coverage_violations = ref 0 in
  Array.iter
    (fun u ->
      let p = t.paths.(u.u_path) in
      let covered =
        Array.exists
          (fun s ->
            Routing.Path.mem p s
            && List.exists
                 (fun (e : Netsim.entry) ->
                   Acl.Rule.is_drop e.Netsim.rule
                   && tag_of e = u.u_tag
                   && prio_of e = u.u_prio)
                 t.cached.(s))
          (Array.init (Array.length t.cached) (fun s -> s))
      in
      if not covered then incr coverage_violations)
    t.units;
  let capacity_violations = ref 0 in
  Array.iteri
    (fun s l ->
      if List.length l > t.hw.(s) + t.overflow.(s) then incr capacity_violations)
    t.cached;
  {
    guard_violations = !guard_violations;
    coverage_violations = !coverage_violations;
    capacity_violations = !capacity_violations;
  }

(* {2 Persistence} *)

type persisted = {
  p_hw : int array;
  p_decay : float;
  p_scores : (key * float) list;
  p_resident : bool array array;
  p_pinned : bool array array;
  p_delegated : deleg list;
  p_overflow : int array;
  p_miss : (int * float) list;
  p_last_pins : int;
  p_hits : int;
  p_misses : int;
  p_dhits : int;
}

let capture t =
  let bindings =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.scores [])
  in
  Marshal.to_string
    {
      p_hw = t.hw;
      p_decay = t.decay_f;
      p_scores = bindings;
      p_resident = t.resident;
      p_pinned = t.pinned;
      p_delegated = t.delegated;
      p_overflow = t.overflow;
      p_miss = miss_masses t;
      p_last_pins = t.last_pins;
      p_hits = t.c_hits;
      p_misses = t.c_misses;
      p_dhits = t.c_dhits;
    }
    []

let restore ~net ~paths tables blob =
  let p : persisted = Marshal.from_string blob 0 in
  let t = create ~decay:p.p_decay ~net ~paths ~hw:p.p_hw tables in
  List.iter (fun (k, v) -> Hashtbl.replace t.scores k v) p.p_scores;
  t.resident <- p.p_resident;
  t.pinned <- p.p_pinned;
  t.delegated <- p.p_delegated;
  t.overflow <- p.p_overflow;
  List.iter (fun (k, v) -> Hashtbl.replace t.miss_tag k v) p.p_miss;
  t.last_pins <- p.p_last_pins;
  t.c_hits <- p.p_hits;
  t.c_misses <- p.p_misses;
  t.c_dhits <- p.p_dhits;
  build_cached t;
  t

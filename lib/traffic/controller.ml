let m_epochs =
  Telemetry.Metrics.counter ~help:"traffic epochs processed"
    "sdnplace_traffic_epochs_total"

let m_resolves =
  Telemetry.Metrics.counter ~help:"drift-triggered re-solve events issued"
    "sdnplace_traffic_resolves_total"

type config = {
  family : Workload.family;
  epochs : int;
  packets : int;
  alpha : float;
  drift : float;
  probes : int;
  hw_frac : float;
  decay : float;
  threshold : float;
  resolve_top : int;
  adaptive : bool;
  deadline_s : float;
}

let default =
  {
    family = Workload.default;
    epochs = 6;
    packets = 4096;
    alpha = 1.1;
    drift = 0.125;
    probes = 4;
    hw_frac = 0.5;
    decay = Cache.default_decay;
    threshold = 0.08;
    resolve_top = 2;
    adaptive = true;
    deadline_s = 30.0;
  }

let hw_of_frac ?(floor = 1) tables frac =
  (* Uniform TCAM hardware: every switch gets [frac] of the mean table
     size.  Sizing per-switch from its own table would make hardware
     headroom proportional to current load — then migrating rules off a
     saturated switch could never gain residency, and the re-weighted
     re-solves would be pointless by construction. *)
  let n = Array.length tables in
  let total = Array.fold_left (fun acc tbl -> acc + List.length tbl) 0 tables in
  let per =
    max floor
      (int_of_float
         (Float.round (frac *. float_of_int total /. float_of_int (max 1 n))))
  in
  Array.map (fun _ -> per) tables

type epoch_report = {
  e_index : int;
  e_drift : int;
  e_resolved : int list;
  e_rungs : string list;
  e_hits : int;
  e_misses : int;
  e_dhits : int;
  e_violations : int;
  e_stats : Cache.rebalance_stats;
  e_check : Cache.check_report;
}

let line r =
  let ints l = if l = [] then "-" else String.concat "," (List.map string_of_int l) in
  let strs l = if l = [] then "-" else String.concat "," l in
  let total = r.e_hits + r.e_misses in
  let rate = if total = 0 then 1.0 else float_of_int r.e_hits /. float_of_int total in
  Printf.sprintf
    "epoch=%d drift=%d resolve=%s rungs=%s hits=%d misses=%d dhits=%d rate=%.4f \
     res=%d deleg=%d evict=%d newdeleg=%d pin=%d over=%d viol=%d chk=%d/%d/%d"
    r.e_index r.e_drift (ints r.e_resolved) (strs r.e_rungs) r.e_hits r.e_misses
    r.e_dhits rate r.e_stats.Cache.resident r.e_stats.Cache.delegated
    r.e_stats.Cache.evictions r.e_stats.Cache.delegations_new
    r.e_stats.Cache.pinned r.e_stats.Cache.overflow r.e_violations
    r.e_check.Cache.guard_violations r.e_check.Cache.coverage_violations
    r.e_check.Cache.capacity_violations

(* ------------------------------------------------------------------ *)
(* Journal client blob: the complete controller state as of one durable
   point — an epoch boundary ([b_sub = 0]) or the completion of the
   [b_sub]'th re-solve event of epoch [b_epoch].  Everything [resume]
   needs to re-enter the loop rides here; the cache blob is captured
   against [b_full] (the full tables at that instant), which the blob
   carries so a restore after replayed re-solves still indexes the
   tables the residency bitmaps were built over. *)

type blob = {
  b_epoch : int;
  b_sub : int;
  b_plan : int list;
  b_drift : int;
  b_cache : string;
  b_full : Netsim.entry list array;
  b_weights : float array;
  b_last_resolve : int array;
  b_best_miss : float;
  b_resolves : int;
  b_violations : int;
  b_hits0 : int;
  b_misses0 : int;
  b_dhits0 : int;
  b_viol0 : int;
  b_reports : epoch_report list;  (* newest first *)
  b_stats : Cache.rebalance_stats;
}

(* A crash-resumed half-epoch: the walk and re-solve events
   [0 .. p_sub - 1] are already durable (the events were replayed by
   recovery, their rungs recorded here); the first [step] finishes the
   epoch from the blob's captured state instead of re-walking. *)
type pending = {
  p_sub : int;
  p_rungs : string list;  (* events 0..p_sub-1, in order *)
  p_plan : int list;
  p_drift : int;
  p_cache : string;
  p_full : Netsim.entry list array;
  p_baselines : int * int * int * int;
}

type t = {
  cfg : config;
  zcfg : Zipf.config;
  j : Journal.Journaled.t;
  cache : Cache.t;
  paths : Routing.Path.t array;
  weights : float array;  (* controller copy; pushed via Engine.reweight *)
  mutable zs : Zipf.t;
  mutable epoch : int;  (* next epoch to run *)
  mutable last_resolve : int array;  (* counts at last re-solve; [||] = none *)
  mutable best_miss : float;  (* lowest epoch miss rate since last re-solve *)
  mutable resolves : int;
  mutable violations : int;
  mutable reports : epoch_report list;  (* newest first *)
  mutable last_stats : Cache.rebalance_stats;
  mutable pending : pending option;
}

let engine t = Journal.Journaled.engine t.j
let inst t = (Runtime.Engine.good (engine t)).Placement.Solution.instance
let config t = t.cfg
let cache t = t.cache
let epoch t = t.epoch
let resolves t = t.resolves
let violations t = t.violations
let reports t = List.rev t.reports

let zipf_config cfg ~flows =
  {
    Zipf.flows;
    packets = cfg.packets;
    alpha = cfg.alpha;
    drift = cfg.drift;
    seed = cfg.family.Workload.seed;
  }

(* The per-epoch packet stream: independent of the Zipf drift stream and
   of the workload's routing/policy streams, and a pure function of
   (family seed, epoch index) so a resumed run redraws the identical
   probes for a replayed epoch. *)
let epoch_prng cfg i =
  Prng.create (((cfg.family.Workload.seed * 0x100000001B3) + i) lxor 0x243F6A8885A308D)

let solve_options cfg ~weights =
  let objective =
    if cfg.adaptive then Placement.Encode.Switch_weighted weights
    else Placement.Encode.Total_rules
  in
  Placement.Solve.options ~objective ()

let engine_config cfg ~weights =
  {
    Runtime.Engine.default_config with
    deadline_s = cfg.deadline_s;
    solve_options = solve_options cfg ~weights;
  }

(* Snapshots are taken manually at epoch boundaries only, so the WAL
   between two snapshots is exactly one epoch's re-solve events and a
   recovery's replayed-report list reconstructs that epoch's rungs. *)
let journal_config = { Journal.Journaled.snapshot_every = max_int }

let validate cfg =
  if cfg.epochs < 0 then invalid_arg "Controller: epochs < 0";
  if cfg.packets < 0 then invalid_arg "Controller: packets < 0";
  if cfg.probes < 1 then invalid_arg "Controller: probes < 1";
  if cfg.hw_frac <= 0.0 then invalid_arg "Controller: hw_frac <= 0";
  if cfg.threshold < 0.0 then invalid_arg "Controller: threshold < 0";
  if cfg.resolve_top < 0 then invalid_arg "Controller: resolve_top < 0"

let make_blob t ~sub ~plan ~drift ~cache_blob ~full
    ~baselines:(h0, m0, d0, v0) =
  {
    b_epoch = t.epoch;
    b_sub = sub;
    b_plan = plan;
    b_drift = drift;
    b_cache = cache_blob;
    b_full = full;
    b_weights = Array.copy t.weights;
    b_last_resolve = Array.copy t.last_resolve;
    b_best_miss = t.best_miss;
    b_resolves = t.resolves;
    b_violations = t.violations;
    b_hits0 = h0;
    b_misses0 = m0;
    b_dhits0 = d0;
    b_viol0 = v0;
    b_reports = t.reports;
    b_stats = t.last_stats;
  }

let counters t =
  (Cache.hits t.cache, Cache.misses t.cache, Cache.delegated_hits t.cache,
   t.violations)

let persist_boundary t =
  let cache_blob = Cache.capture t.cache in
  let full = Cache.full_tables t.cache in
  let b =
    make_blob t ~sub:0 ~plan:[] ~drift:0 ~cache_blob ~full
      ~baselines:(counters t)
  in
  Journal.Journaled.set_client t.j (Marshal.to_string b []);
  Journal.Journaled.snapshot_now t.j

let create ?store ?kill cfg =
  validate cfg;
  let store = match store with Some s -> s | None -> fst (Journal.Store.memory ()) in
  let inst0 = Workload.build cfg.family in
  let n = Topo.Net.num_switches inst0.Placement.Instance.net in
  let weights = Array.make n 1.0 in
  let options = solve_options cfg ~weights in
  let rep = Placement.Solve.run ~options inst0 in
  let sol =
    match rep.Placement.Solve.solution with
    | Some s -> s
    | None -> invalid_arg "Controller: initial placement infeasible"
  in
  let j =
    Journal.Journaled.create ~config:(engine_config cfg ~weights)
      ~journal:journal_config ?kill ~store sol
  in
  let eng = Journal.Journaled.engine j in
  let instance = sol.Placement.Solution.instance in
  let paths =
    Array.of_list (Routing.Table.paths instance.Placement.Instance.routing)
  in
  if Array.length paths = 0 then invalid_arg "Controller: no routed paths";
  let zcfg = zipf_config cfg ~flows:(Array.length paths) in
  let full = Runtime.Engine.table_snapshot eng in
  let hw = hw_of_frac full cfg.hw_frac in
  let cache =
    Cache.create ~decay:cfg.decay ~net:instance.Placement.Instance.net
      ~paths:(Array.to_list paths) ~hw full
  in
  (* Both modes place once up front (coverage must hold from packet one);
     only the adaptive controller ever rebalances again. *)
  let stats0 = Cache.rebalance ~pinned_tags:(Runtime.Engine.quarantined eng) cache in
  let t =
    {
      cfg;
      zcfg;
      j;
      cache;
      paths;
      weights = Array.make n 1.0;
      zs = Zipf.create zcfg;
      epoch = 0;
      last_resolve = [||];
      best_miss = infinity;
      resolves = 0;
      violations = 0;
      reports = [];
      last_stats = stats0;
      pending = None;
    }
  in
  persist_boundary t;
  t

(* ------------------------------------------------------------------ *)
(* The epoch pipeline                                                  *)

let walk t i (e : Zipf.epoch) =
  let g = epoch_prng t.cfg i in
  (* Probe packets target real rule fields: for each path, the drop
     rules of its ingress policy that can fire inside the path's flow
     space.  A uniform draw over the raw flow space almost never hits
     a classbench rule, which would leave the hit accounting vacuous. *)
  let full = Cache.full_tables t.cache in
  let targets =
    Array.map
      (fun (p : Routing.Path.t) ->
        let seen = Hashtbl.create 8 in
        let acc = ref [] in
        Array.iter
          (List.iter (fun (en : Netsim.entry) ->
               let rule = en.Netsim.rule in
               if
                 Acl.Rule.is_drop rule
                 && List.exists
                      (fun tag -> Netsim.base_tag tag = p.Routing.Path.ingress)
                      en.Netsim.tags
                 && not (Hashtbl.mem seen rule.Acl.Rule.priority)
               then
                 match
                   Ternary.Field.inter rule.Acl.Rule.field p.Routing.Path.flow
                 with
                 | Some f ->
                   Hashtbl.add seen rule.Acl.Rule.priority ();
                   acc := f :: !acc
                 | None -> ()))
          full;
        Array.of_list (List.rev !acc))
      t.paths
  in
  Array.iteri
    (fun f c ->
      if c > 0 then begin
        let n = min c t.cfg.probes in
        let q = c / n and r = c mod n in
        let path = t.paths.(f) in
        let tgt = targets.(f) in
        for k = 0 to n - 1 do
          let w = if k < r then q + 1 else q in
          (* each flow concentrates on its own few rules (offset by flow
             id), so rule popularity follows the Zipf flow ranks and
             drifts with them — a uniform per-probe rule choice would
             flatten popularity into plain match-priority order *)
          let field =
            if Array.length tgt = 0 then path.Routing.Path.flow
            else tgt.((f + k) mod Array.length tgt)
          in
          let pkt = Ternary.Field.random_packet g field in
          let res = Cache.account t.cache ~path ~weight:w pkt in
          (* the delegation contract preserves the verdict, not the drop
             location: a delegated drop fires at an on-path neighbor *)
          let agree =
            match (res.Cache.w_full, res.Cache.w_cached) with
            | Netsim.Delivered, Netsim.Delivered -> true
            | Netsim.Dropped _, Netsim.Dropped _ -> true
            | _ -> false
          in
          if not agree then t.violations <- t.violations + 1
        done
      end)
    e.Zipf.counts

(* Re-solve the ingresses whose traffic the cache is failing to serve
   at home, worst first.  Drift (the trigger) says the traffic changed;
   miss mass says which placements are actually paying for it — an
   ingress whose hot rules are all resident needs no re-solve however
   much its ranks moved. *)
let plan_resolves t (_e : Zipf.epoch) =
  Cache.miss_masses t.cache
  |> List.filter (fun (ing, m) ->
         m > 0.0 && Placement.Instance.policy_of (inst t) ing <> None)
  |> List.sort (fun (ia, ma) (ib, mb) ->
         if ma = mb then compare ia ib else compare mb ma)
  |> List.filteri (fun k _ -> k < t.cfg.resolve_top)
  |> List.map fst

let resolve_rungs = [ Runtime.Report.Incremental; Runtime.Report.Greedy ]

(* Issue re-solve events [start_sub ..] of [plan], then close the epoch:
   refresh the cache from the (possibly re-solved) live tables, rebalance,
   self-check, report, persist the boundary.  Shared between the normal
   path (start_sub = 0) and a crash-resumed half-epoch. *)
let finish_epoch t ~drift ~plan ~cache_blob ~full ~baselines ~start_sub ~rungs0 =
  let i = t.epoch in
  let rungs = ref (List.rev rungs0) in
  List.iteri
    (fun k ingress ->
      if k >= start_sub then begin
        let policy =
          match Placement.Instance.policy_of (inst t) ingress with
          | Some p -> p
          | None -> invalid_arg "Controller: re-solve target lost its policy"
        in
        t.resolves <- t.resolves + 1;
        let client =
          Marshal.to_string
            (make_blob t ~sub:(k + 1) ~plan ~drift ~cache_blob ~full ~baselines)
            []
        in
        let report =
          Journal.Journaled.handle ~client ~rungs:resolve_rungs t.j
            (Runtime.Event.Update_policy { ingress; policy })
        in
        Telemetry.Metrics.incr m_resolves;
        rungs := Runtime.Report.rung_name report.Runtime.Report.rung :: !rungs
      end)
    plan;
  if plan <> [] then begin
    Cache.refresh t.cache (Runtime.Engine.table_snapshot (engine t));
    (* the re-solved placements start with a clean miss slate, so the
       next trigger targets whoever suffers under the NEW tables *)
    List.iter (Cache.clear_miss t.cache) plan
  end;
  let stats =
    if t.cfg.adaptive then begin
      let s =
        Cache.rebalance ~pinned_tags:(Runtime.Engine.quarantined (engine t))
          t.cache
      in
      t.last_stats <- s;
      s
    end
    else { t.last_stats with Cache.evictions = 0; delegations_new = 0 }
  in
  let chk = Cache.check t.cache in
  let h0, m0, d0, v0 = baselines in
  let er =
    {
      e_index = i;
      e_drift = drift;
      e_resolved = plan;
      e_rungs = List.rev !rungs;
      e_hits = Cache.hits t.cache - h0;
      e_misses = Cache.misses t.cache - m0;
      e_dhits = Cache.delegated_hits t.cache - d0;
      e_violations = t.violations - v0;
      e_stats = stats;
      e_check = chk;
    }
  in
  t.reports <- er :: t.reports;
  t.epoch <- i + 1;
  Telemetry.Metrics.incr m_epochs;
  persist_boundary t;
  er

let run_epoch t =
  let i = t.epoch in
  let baselines = counters t in
  if t.cfg.adaptive then Cache.decay t.cache;
  let e = Zipf.next t.zs in
  walk t i e;
  let drift =
    if Array.length t.last_resolve = 0 then 0
    else begin
      let acc = ref 0 in
      Array.iteri
        (fun f c -> acc := !acc + abs (c - t.last_resolve.(f)))
        e.Zipf.counts;
      !acc
    end
  in
  (* A re-solve needs BOTH signals: the traffic moved (drift) AND the
     cache is actually degrading — this epoch's miss rate materially
     above the best seen since the last re-solve.  Without the second
     condition the pressure-weighted objective can flip-flop between
     two placements while the cache is perfectly healthy. *)
  let miss_rate =
    let _, m0, _, _ = baselines in
    float_of_int (Cache.misses t.cache - m0)
    /. float_of_int (max 1 t.zcfg.Zipf.packets)
  in
  let plan =
    if
      t.cfg.adaptive
      && Array.length t.last_resolve > 0
      && float_of_int drift
         > t.cfg.threshold *. float_of_int (2 * t.zcfg.Zipf.packets)
      && miss_rate > 1.25 *. t.best_miss
    then plan_resolves t e
    else []
  in
  if plan <> [] then t.best_miss <- infinity
  else t.best_miss <- Float.min t.best_miss miss_rate;
  if Array.length t.last_resolve = 0 || plan <> [] then
    t.last_resolve <- Array.copy e.Zipf.counts;
  if plan <> [] then begin
    (* Cache pressure -> per-switch placement cost: saturated TCAMs get
       more expensive, so the incremental re-solve steers rules away
       from them.  The engine's objective array is updated through the
       runtime's reweight hook, never aliased. *)
    let pressure = Cache.score_pressure t.cache in
    let occ = Cache.occupancy t.cache in
    Array.iteri
      (fun s p -> t.weights.(s) <- 1.0 +. p +. occ.(s))
      pressure;
    Runtime.Engine.reweight (engine t) t.weights
  end;
  let cache_blob = Cache.capture t.cache in
  let full = Cache.full_tables t.cache in
  finish_epoch t ~drift ~plan ~cache_blob ~full ~baselines ~start_sub:0
    ~rungs0:[]

let step t =
  if t.epoch >= t.cfg.epochs then None
  else
    Some
      (Telemetry.Trace.with_span "traffic.epoch" (fun () ->
           match t.pending with
           | None -> run_epoch t
           | Some p ->
             t.pending <- None;
             finish_epoch t ~drift:p.p_drift ~plan:p.p_plan
               ~cache_blob:p.p_cache ~full:p.p_full ~baselines:p.p_baselines
               ~start_sub:p.p_sub ~rungs0:p.p_rungs))

let run t =
  let rec go () = match step t with None -> reports t | Some _ -> go () in
  go ()

(* ------------------------------------------------------------------ *)
(* Crash-resume                                                        *)

let resume ~store cfg =
  validate cfg;
  let inst0 = Workload.build cfg.family in
  let n = Topo.Net.num_switches inst0.Placement.Instance.net in
  let weights = Array.make n 1.0 in
  let ecfg = engine_config cfg ~weights in
  let recover () =
    Journal.Journaled.recover ~config:ecfg ~journal:journal_config
      ~resnap:false ~store ()
  in
  match Journal.Journaled.peek_client ~store () with
  | Error e -> Error e
  | Ok None -> Error "Controller.resume: journal has no client blob"
  | Ok (Some blob_s) -> (
      let b : blob = Marshal.from_string blob_s 0 in
      if Array.length b.b_weights <> n then
        Error "Controller.resume: weight vector shape mismatch"
      else begin
        (* Weights feed the solve objective the replay runs under, and
           they are constant across one epoch's events (reweight happens
           before the first re-solve; the boundary snapshot closes the
           epoch) — so the latest blob's weights govern every event the
           log can still hold.  Install them before recovering, so the
           replayed solves run under the original costs. *)
        Array.blit b.b_weights 0 weights 0 n;
        match recover () with
        | Error e -> Error e
        | Ok r ->
          if r.Journal.Journaled.divergences <> [] then
            Error
              ("Controller.resume: replay diverged: "
              ^ String.concat "; " r.Journal.Journaled.divergences)
          else if List.length r.Journal.Journaled.replayed <> b.b_sub then
            Error "Controller.resume: replayed events do not match the blob"
          else begin
            let j = r.Journal.Journaled.journaled in
            let eng = Journal.Journaled.engine j in
            let instance =
              (Runtime.Engine.good eng).Placement.Solution.instance
            in
            let paths =
              Array.of_list
                (Routing.Table.paths instance.Placement.Instance.routing)
            in
            let zcfg = zipf_config cfg ~flows:(Array.length paths) in
            let cache =
              Cache.restore ~net:instance.Placement.Instance.net
                ~paths:(Array.to_list paths) b.b_full b.b_cache
            in
            let t =
              {
                cfg;
                zcfg;
                j;
                cache;
                paths;
                weights;
                zs =
                  Zipf.at zcfg
                    (if b.b_sub = 0 then b.b_epoch else b.b_epoch + 1);
                epoch = b.b_epoch;
                last_resolve = b.b_last_resolve;
                best_miss = b.b_best_miss;
                resolves = b.b_resolves;
                violations = b.b_violations;
                reports = b.b_reports;
                last_stats = b.b_stats;
                pending = None;
              }
            in
            if b.b_sub = 0 then
              (* clean boundary: re-snapshot so recovery is idempotent *)
              persist_boundary t
            else begin
              let rungs =
                List.map
                  (fun (_, rep) ->
                    Runtime.Report.rung_name rep.Runtime.Report.rung)
                  r.Journal.Journaled.replayed
              in
              t.pending <-
                Some
                  {
                    p_sub = b.b_sub;
                    p_rungs = rungs;
                    p_plan = b.b_plan;
                    p_drift = b.b_drift;
                    p_cache = b.b_cache;
                    p_full = b.b_full;
                    p_baselines = (b.b_hits0, b.b_misses0, b.b_dhits0, b.b_viol0);
                  }
            end;
            Ok t
          end
      end)
